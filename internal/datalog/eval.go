package datalog

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/cover"
	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
)

// Options configures Eval.
type Options struct {
	// P is the number of servers. Required, ≥ 1.
	P int
	// Epsilon is the MPC(ε) space exponent handed to the planner for
	// every rule body; nil lets each body use its own one-round
	// exponent 1 − 1/τ*.
	Epsilon *big.Rat
	// CapConstant enables receive-budget enforcement when positive.
	CapConstant float64
	// Seed drives every hash function of the run.
	Seed uint64
	// Strategy selects the per-worker local join algorithm.
	Strategy localjoin.Strategy
	// Dial returns a fresh transport for one execution session (a
	// transport cannot be reused across sessions): one per rule-body
	// plan execution, one per recursive-rule maintainer. nil runs
	// everything on in-process loopback pools.
	Dial func(p int) (dist.Transport, error)
	// Context bounds distributed executions; nil selects
	// context.Background().
	Context context.Context
	// MaxIterations bounds the fixpoint loop of each recursive stratum;
	// ≤ 0 means no bound (the loop terminates anyway: the domain is
	// finite and every iteration adds facts).
	MaxIterations int
}

// Result reports a Datalog evaluation.
type Result struct {
	// Answers is the output predicate's fact set: sorted, deduplicated,
	// in head-term order.
	Answers []relation.Tuple
	// Vars labels the answer columns: the goal's variables when a goal
	// was declared, otherwise the output predicate's head terms
	// rendered as written ("x", "count(y)").
	Vars []string
	// Facts holds every IDB predicate's derived fact set. Shared
	// slices; callers must not mutate.
	Facts map[string][]relation.Tuple
	// Iterations is the total number of semi-naive delta iterations
	// across all recursive strata (0 for a non-recursive program).
	Iterations int
	// Stats concatenates the round records of every execution the
	// program ran — rule bodies in stratum order, then each recursive
	// rule's maintenance rounds — so two transports that execute the
	// same program produce identical records.
	Stats *mpc.Stats
	// CapExceeded reports whether any worker broke the receive budget
	// in any execution.
	CapExceeded bool
	// Replacements counts workers replaced by recovery across all
	// executions.
	Replacements int
}

// Eval runs the program over db on the simulated MPC(ε) cluster. The
// database must hold exactly the EDB predicates (IDB predicates are
// derived and may not be pre-populated). Each rule body is planned and
// executed as a conjunctive query through internal/plan; recursive
// strata run a semi-naive fixpoint in which every delta iteration is
// an incremental-maintenance batch (hypercube.Maintainer) on a warm
// cluster, so iteration cost is delta routing, not a rescatter.
func Eval(prog *Program, db *relation.Database, opts Options) (*Result, error) {
	if opts.P < 1 {
		return nil, fmt.Errorf("datalog: p = %d, need ≥ 1", opts.P)
	}
	for _, pred := range prog.EDBPreds() {
		rel, ok := db.Relation(pred)
		if !ok {
			return nil, fmt.Errorf("datalog: database missing EDB relation %s", pred)
		}
		want, _ := prog.Arity(pred)
		if rel.Arity() != want {
			return nil, fmt.Errorf("datalog: relation %s has arity %d, program uses it with arity %d", pred, rel.Arity(), want)
		}
	}
	for _, pred := range prog.IDBPreds() {
		if _, ok := db.Relation(pred); ok {
			return nil, fmt.Errorf("datalog: relation %s is derived by a rule but present in the database", pred)
		}
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	e := &evaluator{prog: prog, opts: opts, ctx: ctx, facts: make(map[string][]relation.Tuple)}
	// The working database: shared EDB relations plus the IDB
	// relations as strata complete.
	e.wdb = relation.NewDatabase(db.N)
	for _, pred := range prog.EDBPreds() {
		rel, _ := db.Relation(pred)
		e.wdb.AddRelation(rel)
	}

	for _, s := range prog.Strata() {
		var err error
		if s.Recursive {
			err = e.evalRecursive(s)
		} else {
			err = e.evalStratum(s)
		}
		if err != nil {
			return nil, err
		}
	}

	out := prog.OutputPred()
	return &Result{
		Answers:      e.facts[out],
		Vars:         prog.outputVars(),
		Facts:        e.facts,
		Iterations:   e.iterations,
		Stats:        &mpc.Stats{Rounds: e.rounds},
		CapExceeded:  e.capSeen,
		Replacements: e.replacements,
	}, nil
}

// outputVars labels the output columns.
func (p *Program) outputVars() []string {
	if p.Goal != nil {
		return p.Goal.Vars
	}
	out := p.OutputPred()
	for i := range p.Rules {
		if p.Rules[i].Head.Pred != out {
			continue
		}
		vars := make([]string, len(p.Rules[i].Head.Terms))
		for j, t := range p.Rules[i].Head.Terms {
			vars[j] = t.String()
		}
		return vars
	}
	return nil
}

type evaluator struct {
	prog *Program
	opts Options
	ctx  context.Context
	wdb  *relation.Database
	// facts maps IDB pred → sorted, deduplicated fact set.
	facts map[string][]relation.Tuple

	iterations   int
	rounds       []mpc.RoundStats
	capSeen      bool
	replacements int
}

// dial returns the transport for one execution session (nil = the
// engine's own loopback).
func (e *evaluator) dial() (dist.Transport, error) {
	if e.opts.Dial == nil {
		return nil, nil
	}
	return e.opts.Dial(e.opts.P)
}

// BodyQuery compiles the rule body into a conjunctive query named
// after the head predicate — the unit the planner costs and executes.
func (r *Rule) BodyQuery() (*query.Query, error) {
	atoms := make([]query.Atom, len(r.Body))
	for i, a := range r.Body {
		atoms[i] = query.Atom{Name: a.Pred, Vars: append([]string(nil), a.Vars...)}
	}
	return query.New(r.Head.Pred, atoms...)
}

// AggregateSpec returns the gather-fold spec of an aggregate rule
// relative to the body query's variable order, or nil for a plain
// rule: group columns are the plain head terms, aggregate columns the
// aggregate terms, both in head order (analysis guarantees groups
// precede aggregates, so the fold's output order is the head order).
func (r *Rule) AggregateSpec(q *query.Query) *relation.GroupSpec {
	if !r.HasAggregate() {
		return nil
	}
	var spec relation.GroupSpec
	for _, t := range r.Head.Terms {
		if t.Agg != 0 {
			spec.Aggs = append(spec.Aggs, relation.Aggregate{Func: t.Agg, Col: q.VarIndex(t.Var)})
		} else {
			spec.GroupBy = append(spec.GroupBy, q.VarIndex(t.Var))
		}
	}
	return &spec
}

// headPositions maps each head term to its column in the body query's
// Vars() order.
func headPositions(r *Rule, q *query.Query) []int {
	pos := make([]int, len(r.Head.Terms))
	for i, t := range r.Head.Terms {
		pos[i] = q.VarIndex(t.Var)
	}
	return pos
}

// project maps full body answers onto the head terms and returns the
// sorted, deduplicated head facts.
func project(answers []relation.Tuple, pos []int) []relation.Tuple {
	out := make([]relation.Tuple, len(answers))
	for i, t := range answers {
		row := make(relation.Tuple, len(pos))
		for j, p := range pos {
			row[j] = t[p]
		}
		out[i] = row
	}
	return relation.DedupSort(out)
}

// record accumulates one execution's communication record.
func (e *evaluator) record(stats *mpc.Stats, capExceeded bool, replacements int) {
	e.rounds = append(e.rounds, stats.Rounds...)
	e.capSeen = e.capSeen || capExceeded
	e.replacements += replacements
}

// evalRule plans and executes one non-recursive rule body end to end
// and returns the head facts (projected, or aggregate-folded).
func (e *evaluator) evalRule(r *Rule) ([]relation.Tuple, error) {
	q, err := r.BodyQuery()
	if err != nil {
		return nil, fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
	}
	pl, err := plan.Build(q, relation.CollectStats(e.wdb), plan.Options{
		P: e.opts.P, Epsilon: e.opts.Epsilon, CapFactor: e.opts.CapConstant,
	})
	if err != nil {
		return nil, fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
	}
	if r.HasAggregate() {
		if pl, err = pl.WithAggregate(*r.AggregateSpec(q)); err != nil {
			return nil, fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
		}
	}
	tr, err := e.dial()
	if err != nil {
		return nil, err
	}
	res, err := pl.Execute(e.wdb, plan.ExecOptions{
		Seed:        e.opts.Seed,
		CapConstant: e.opts.CapConstant,
		Strategy:    e.opts.Strategy,
		Transport:   tr,
		Context:     e.ctx,
	})
	if tr != nil {
		tr.Close()
	}
	if err != nil {
		return nil, fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
	}
	e.record(res.Stats, res.CapExceeded, res.Replacements)
	if r.HasAggregate() {
		// Already one sorted row per group, in head order.
		return res.Answers, nil
	}
	return project(res.Answers, headPositions(r, q)), nil
}

// install publishes a completed predicate into the working database.
func (e *evaluator) install(pred string, facts []relation.Tuple) {
	e.facts[pred] = facts
	arity, _ := e.prog.Arity(pred)
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("c%d", i)
	}
	rel := relation.New(pred, attrs...)
	rel.Tuples = facts
	e.wdb.AddRelation(rel)
}

// evalStratum evaluates a non-recursive stratum: the union of its
// rules' head facts (a single predicate — non-recursive SCCs are
// singletons).
func (e *evaluator) evalStratum(s Stratum) error {
	pred := s.Preds[0]
	var facts []relation.Tuple
	for _, ri := range s.Rules {
		head, err := e.evalRule(&e.prog.Rules[ri])
		if err != nil {
			return err
		}
		facts = append(facts, head...)
	}
	if len(s.Rules) > 1 {
		facts = relation.DedupSort(facts)
	}
	e.install(pred, facts)
	return nil
}

// evalRecursive runs the semi-naive fixpoint of one recursive
// stratum. Base rules (no stratum predicate in the body) seed the
// iteration; each recursive rule becomes a warm Maintainer whose cold
// run is iteration zero, and each subsequent iteration feeds the
// per-predicate delta into every maintainer reading it as an
// incremental batch — replication-factor routing, answers gathered
// from the delta join only.
func (e *evaluator) evalRecursive(s Stratum) error {
	inStratum := make(map[string]bool, len(s.Preds))
	for _, pred := range s.Preds {
		inStratum[pred] = true
	}
	var baseRules, recRules []*Rule
	for _, ri := range s.Rules {
		r := &e.prog.Rules[ri]
		rec := false
		for _, a := range r.Body {
			if inStratum[a.Pred] {
				rec = true
				break
			}
		}
		if rec {
			recRules = append(recRules, r)
		} else {
			baseRules = append(baseRules, r)
		}
	}
	if len(recRules) == 0 {
		// Tarjan flagged a self-loop that body scanning missed — cannot
		// happen; guard anyway.
		return fmt.Errorf("datalog: stratum %v marked recursive but has no recursive rule", s.Preds)
	}

	// Seed: base-rule facts become the initial stores the maintainers
	// scatter. Predicates with no base rule start empty.
	known := make(map[string][]relation.Tuple, len(s.Preds))
	for _, pred := range s.Preds {
		known[pred] = nil
	}
	for _, r := range baseRules {
		head, err := e.evalRule(r)
		if err != nil {
			return err
		}
		known[r.Head.Pred] = mergeSorted(known[r.Head.Pred], head)
	}
	for _, pred := range s.Preds {
		e.install(pred, known[pred])
	}

	// One warm maintainer per recursive rule; its cold run already
	// joins the seeds, so its Answers() are the iteration-zero
	// derivations.
	type maint struct {
		rule *Rule
		q    *query.Query
		m    *hypercube.Maintainer
		pos  []int
	}
	ms := make([]maint, 0, len(recRules))
	closeAll := func() {
		for _, mm := range ms {
			mm.m.Close()
		}
	}
	delta := make(map[string][]relation.Tuple, len(s.Preds))
	for _, r := range recRules {
		q, err := r.BodyQuery()
		if err != nil {
			return fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
		}
		tr, err := e.dial()
		if err != nil {
			closeAll()
			return err
		}
		var epsF float64
		if e.opts.Epsilon != nil {
			epsF, _ = e.opts.Epsilon.Float64()
		} else {
			cr, err := cover.Solve(q)
			if err != nil {
				closeAll()
				return fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
			}
			epsF = cr.SpaceExponentFloat()
		}
		m, err := hypercube.NewMaintainer(q, e.wdb, e.opts.P, hypercube.Options{
			Epsilon:     epsF,
			CapConstant: e.opts.CapConstant,
			Seed:        e.opts.Seed,
			Strategy:    e.opts.Strategy,
			Transport:   tr,
			Context:     e.ctx,
		})
		if err != nil {
			if tr != nil {
				tr.Close()
			}
			closeAll()
			return fmt.Errorf("datalog: rule for %s: %v", r.Head.Pred, err)
		}
		pos := headPositions(r, q)
		ms = append(ms, maint{rule: r, q: q, m: m, pos: pos})
		fresh := diffSorted(project(m.Answers(), pos), known[r.Head.Pred])
		delta[r.Head.Pred] = mergeSorted(delta[r.Head.Pred], fresh)
	}
	for pred, d := range delta {
		known[pred] = mergeSorted(known[pred], d)
	}

	// The fixpoint loop: every iteration ships each predicate's delta
	// to every maintainer that reads it, in one batch per rule, and
	// the genuinely new answers (Report.Fresh) become the next delta.
	for hasFacts(delta) {
		e.iterations++
		if e.opts.MaxIterations > 0 && e.iterations > e.opts.MaxIterations {
			closeAll()
			return fmt.Errorf("datalog: stratum %v exceeded %d fixpoint iterations", s.Preds, e.opts.MaxIterations)
		}
		next := make(map[string][]relation.Tuple, len(s.Preds))
		for _, mm := range ms {
			changes := make(map[string]relation.Effect)
			for _, a := range mm.rule.Body {
				if d := delta[a.Pred]; inStratum[a.Pred] && len(d) > 0 {
					changes[a.Pred] = relation.Effect{Added: d}
				}
			}
			if len(changes) == 0 {
				continue
			}
			rep, err := mm.m.ApplyDelta(changes)
			if err != nil {
				closeAll()
				return fmt.Errorf("datalog: rule for %s: %v", mm.rule.Head.Pred, err)
			}
			e.capSeen = e.capSeen || rep.CapExceeded
			fresh := diffSorted(project(rep.Fresh, mm.pos), known[mm.rule.Head.Pred])
			next[mm.rule.Head.Pred] = mergeSorted(next[mm.rule.Head.Pred], fresh)
		}
		// Deltas are measured against known before this iteration's
		// merge, so two rules deriving the same new fact contribute it
		// once (mergeSorted dedups) and nothing re-enters later rounds.
		for pred, d := range next {
			known[pred] = mergeSorted(known[pred], d)
		}
		delta = next
	}

	for _, mm := range ms {
		e.record(mm.m.Stats(), false, mm.m.Replacements())
		mm.m.Close()
	}
	for _, pred := range s.Preds {
		e.install(pred, known[pred])
	}
	return nil
}

// hasFacts reports whether any delta is nonempty.
func hasFacts(delta map[string][]relation.Tuple) bool {
	for _, d := range delta {
		if len(d) > 0 {
			return true
		}
	}
	return false
}

// mergeSorted merges two sorted, deduplicated tuple slices into one.
func mergeSorted(a, b []relation.Tuple) []relation.Tuple {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]relation.Tuple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		case b[j].Less(a[i]):
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// diffSorted returns the elements of a not present in b (both sorted,
// deduplicated).
func diffSorted(a, b []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i].Less(b[j]):
			out = append(out, a[i])
			i++
		case b[j].Less(a[i]):
			j++
		default:
			i++
			j++
		}
	}
	return out
}
