package datalog

import "testing"

// FuzzParseProgram asserts Parse never panics, and that accepted
// programs survive a canonical-rendering round trip: String() parses
// back to a program with the identical rendering.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"tc(x,y) :- e(x,y).",
		"tc(x,y) :- e(x,y).\ntc(x,z) :- tc(x,y), e(y,z).\n?- tc(x,y).",
		"odd(x,y) :- e(x,y).\nodd(x,z) :- even(x,y), e(y,z).\neven(x,z) :- odd(x,y), e(y,z).",
		"deg(x, count(y)) :- e(x,y).",
		"agg(x, count(y), sum(y), min(y), max(y)) :- e(x,y).",
		"p(x,y,z) :- r(x,y), s(y,z).\n?- p(a,b,c).",
		"% comment\np(x,y) :- e(x,y). % trailing\n",
		// Rejections the parser must diagnose without panicking.
		"",
		"?- tc(x,y).",
		"e(x,y).",
		"tc(x,,y) :- e(x,y).",
		"tc(x,y) :- e(x,y)",
		"tc(x,y) :- e(x,1).",
		"p(x) :- e(x,y).\nq(x,y) :- p(x,y).",
		"p(x,z) :- e(x,y), e(y,z).",
		"p(x, avg(y)) :- e(x,y).",
		"p(count(y), x) :- e(x,y).",
		"p(x, count(y)) :- p(x,y).",
		"q(x,y) = R(x,y),S(y,z)",
		"tc(x,y) : e(x,y).",
		"? tc(x,y).",
		"𝛼(x,y) :- e(x,y).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		canon := prog.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical rendering rejected: %q from %q: %v", canon, src, err)
		}
		if again.String() != canon {
			t.Fatalf("round trip not stable:\n%q\n%q", canon, again.String())
		}
	})
}
