// Package datalog is the text front end of the reproduction: a strict
// parser and a stratified, semi-naive evaluator for Datalog programs —
// conjunctive rules, grouped aggregation (count/sum/min/max) in rule
// heads, and (mutually) recursive predicates. Rule bodies compile onto
// the statistics-driven engines of internal/plan; recursive strata run
// as a fixpoint loop over the warm incremental-maintenance machinery
// of internal/hypercube, so every semi-naive delta round is routed at
// replication-factor cost instead of a rescatter.
//
// The grammar, deliberately strict where the conjunctive-query parser
// was once lenient:
//
//	program   := { rule | goal }
//	rule      := head ":-" atom { "," atom } "."
//	goal      := "?-" atom "."
//	head      := ident "(" term { "," term } ")"
//	term      := ident | agg "(" ident ")"
//	agg       := "count" | "sum" | "min" | "max"
//	atom      := ident "(" ident { "," ident } ")"
//
// Identifiers are letters, digits and underscores beginning with a
// letter; "%" starts a comment to end of line; every statement is
// terminated by "."; empty positions ("e(x,,y)") and unterminated
// statements are errors. Constants, negation, and facts in program
// text are not supported — base relations arrive as EDB data.
package datalog

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/relation"
)

// Term is one head position: a plain variable, or an aggregate
// function applied to a body variable.
type Term struct {
	// Var is the variable name (the aggregate argument when Agg is
	// set).
	Var string
	// Agg is the aggregate function, or 0 for a plain variable.
	Agg relation.AggFunc
}

// String renders the term as it was written.
func (t Term) String() string {
	if t.Agg != 0 {
		return fmt.Sprintf("%s(%s)", t.Agg, t.Var)
	}
	return t.Var
}

// Head is a rule head: a predicate applied to terms.
type Head struct {
	// Pred is the predicate name.
	Pred string
	// Terms are the head positions in output order.
	Terms []Term
}

// Atom is a body (or goal) predicate applied to variables.
type Atom struct {
	// Pred is the predicate name.
	Pred string
	// Vars are the argument variables.
	Vars []string
}

// String renders the atom.
func (a Atom) String() string {
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(a.Vars, ", "))
}

// Rule is one Datalog rule head :- body.
type Rule struct {
	// Head is the rule head.
	Head Head
	// Body lists the body atoms in written order.
	Body []Atom

	line int
}

// HasAggregate reports whether any head term is an aggregate.
func (r *Rule) HasAggregate() bool {
	for _, t := range r.Head.Terms {
		if t.Agg != 0 {
			return true
		}
	}
	return false
}

// String renders the rule in canonical form.
func (r *Rule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(", r.Head.Pred)
	for i, t := range r.Head.Terms {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteString(") :- ")
	for i, a := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteString(".")
	return sb.String()
}

// Goal is the optional "?- pred(vars)." output declaration.
type Goal struct {
	// Pred is the queried predicate.
	Pred string
	// Vars label the output columns; their count must match the
	// predicate's arity.
	Vars []string

	line int
}

// Program is a parsed, statically validated Datalog program.
type Program struct {
	// Rules in program order.
	Rules []Rule
	// Goal is the output declaration, nil when the program has none.
	Goal *Goal

	an analysis
}

// String renders the program in canonical form, one statement per
// line. Parsing the rendering yields an equal program (the fuzz
// round-trip property).
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteString("\n")
	}
	if p.Goal != nil {
		fmt.Fprintf(&sb, "?- %s.\n", Atom{Pred: p.Goal.Pred, Vars: p.Goal.Vars})
	}
	return sb.String()
}

// IsDatalog reports whether the query text is addressed to this front
// end rather than the conjunctive-query parser: it contains a rule or
// goal marker.
func IsDatalog(src string) bool {
	return strings.Contains(src, ":-") || strings.Contains(src, "?-")
}

// ───────────────────────────── lexer ─────────────────────────────

type tokKind uint8

const (
	tokIdent tokKind = iota + 1
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // ":-"
	tokQuery   // "?-"
	tokEOF
)

func (k tokKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokQuery:
		return "'?-'"
	case tokEOF:
		return "end of input"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string
	line int
}

// lex tokenizes the whole program, rejecting anything outside the
// grammar's alphabet.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(src)
	for i := 0; i < len(rs); {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '%':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case r == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case r == ':':
			if i+1 < len(rs) && rs[i+1] == '-' {
				toks = append(toks, token{tokImplies, ":-", line})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: line %d: ':' not followed by '-'", line)
			}
		case r == '?':
			if i+1 < len(rs) && rs[i+1] == '-' {
				toks = append(toks, token{tokQuery, "?-", line})
				i += 2
			} else {
				return nil, fmt.Errorf("datalog: line %d: '?' not followed by '-'", line)
			}
		case unicode.IsLetter(r):
			j := i + 1
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, string(rs[i:j]), line})
			i = j
		case unicode.IsDigit(r):
			return nil, fmt.Errorf("datalog: line %d: constants are not supported (identifiers begin with a letter); load base facts as EDB data", line)
		default:
			return nil, fmt.Errorf("datalog: line %d: unexpected character %q", line, r)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

// ───────────────────────────── parser ─────────────────────────────

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("datalog: line %d: expected %s, got %q", t.line, k, t.text)
	}
	return t, nil
}

// Parse reads and statically validates a Datalog program: syntax,
// consistent predicate arities, range restriction (safety), the
// aggregate discipline, and stratification (no recursion through
// aggregation, no self-join bodies).
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for p.peek().kind != tokEOF {
		if p.peek().kind == tokQuery {
			g, err := p.parseGoal()
			if err != nil {
				return nil, err
			}
			if prog.Goal != nil {
				return nil, fmt.Errorf("datalog: line %d: second goal (one '?-' per program)", g.line)
			}
			prog.Goal = g
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, *r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("datalog: program has no rules")
	}
	if err := prog.analyze(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) parseGoal() (*Goal, error) {
	q, err := p.expect(tokQuery)
	if err != nil {
		return nil, err
	}
	a, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	return &Goal{Pred: a.Pred, Vars: a.Vars, line: q.line}, nil
}

func (p *parser) parseRule() (*Rule, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	r := &Rule{Head: Head{Pred: name.text}, line: name.line}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		r.Head.Terms = append(r.Head.Terms, t)
		sep := p.next()
		if sep.kind == tokRParen {
			break
		}
		if sep.kind != tokComma {
			return nil, fmt.Errorf("datalog: line %d: expected ',' or ')' in head of %s, got %q", sep.line, name.text, sep.text)
		}
	}
	if _, err := p.expect(tokImplies); err != nil {
		t := p.toks[p.pos]
		return nil, fmt.Errorf("datalog: line %d: rule %s has no ':-' body (facts are not supported; load them as EDB data): got %q",
			t.line, name.text, t.text)
	}
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		r.Body = append(r.Body, a)
		sep := p.next()
		if sep.kind == tokDot {
			break
		}
		if sep.kind != tokComma {
			return nil, fmt.Errorf("datalog: line %d: expected ',' or '.' after body atom, got %q", sep.line, sep.text)
		}
	}
	return r, nil
}

// parseTerm reads a head term: ident, or agg "(" ident ")".
func (p *parser) parseTerm() (Term, error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return Term{}, err
	}
	if p.peek().kind != tokLParen {
		return Term{Var: id.text}, nil
	}
	f, ok := relation.ParseAggFunc(id.text)
	if !ok {
		return Term{}, fmt.Errorf("datalog: line %d: unknown aggregate function %q (count, sum, min, max)", id.line, id.text)
	}
	p.next() // '('
	arg, err := p.expect(tokIdent)
	if err != nil {
		return Term{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return Term{}, err
	}
	return Term{Var: arg.text, Agg: f}, nil
}

// parseAtom reads pred "(" var {"," var} ")".
func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name.text}
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return Atom{}, fmt.Errorf("datalog: atom %s: %v", name.text, err)
		}
		a.Vars = append(a.Vars, v.text)
		sep := p.next()
		if sep.kind == tokRParen {
			break
		}
		if sep.kind != tokComma {
			return Atom{}, fmt.Errorf("datalog: line %d: expected ',' or ')' in atom %s, got %q", sep.line, name.text, sep.text)
		}
	}
	return a, nil
}
