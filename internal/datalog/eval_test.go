package datalog

import (
	"context"
	"math/rand/v2"
	"net"
	"reflect"
	"testing"

	"repro/internal/dist"
	"repro/internal/relation"
)

// startPool spins up n in-process TCP worker listeners (the exact
// code cmd/mpcworker runs) and returns their addresses.
func startPool(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln)
	}
	return addrs
}

// tcpDialer returns an Options.Dial that opens a fresh session
// against the pool per execution.
func tcpDialer(addrs []string) func(int) (dist.Transport, error) {
	return func(int) (dist.Transport, error) {
		return dist.DialTCP(context.Background(), addrs)
	}
}

// edgeDB builds a database with one binary relation e over [1,n].
func edgeDB(n int, edges [][2]int) *relation.Database {
	rel := relation.New("e", "a", "b")
	for _, e := range edges {
		rel.Tuples = append(rel.Tuples, relation.Tuple{e[0], e[1]})
	}
	db := relation.NewDatabase(n)
	db.AddRelation(rel)
	return db
}

// randomEdges draws m edges uniformly over [1,n]² (duplicates kept —
// set semantics must absorb them).
func randomEdges(rng *rand.Rand, n, m int) [][2]int {
	out := make([][2]int, m)
	for i := range out {
		out[i] = [2]int{rng.IntN(n) + 1, rng.IntN(n) + 1}
	}
	return out
}

// naiveTC is the single-node reference: the transitive closure by
// naive fixpoint over a set.
func naiveTC(edges [][2]int) map[[2]int]bool {
	tc := map[[2]int]bool{}
	for _, e := range edges {
		tc[e] = true
	}
	for {
		grew := false
		for xy := range tc {
			for _, e := range edges {
				if e[0] != xy[1] {
					continue
				}
				k := [2]int{xy[0], e[1]}
				if !tc[k] {
					tc[k] = true
					grew = true
				}
			}
		}
		if !grew {
			return tc
		}
	}
}

func pairsOf(ts []relation.Tuple) map[[2]int]bool {
	out := make(map[[2]int]bool, len(ts))
	for _, t := range ts {
		out[[2]int{t[0], t[1]}] = true
	}
	return out
}

const tcProgram = `
	tc(x, y) :- e(x, y).
	tc(x, z) :- tc(x, y), e(y, z).
	?- tc(x, y).
`

// TestEvalTransitiveClosure: the distributed semi-naive evaluation
// equals the single-node naive fixpoint.
func TestEvalTransitiveClosure(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for trial := 0; trial < 3; trial++ {
		edges := randomEdges(rng, 24, 40)
		db := edgeDB(24, edges)
		res, err := Eval(MustParse(tcProgram), db, Options{P: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		want := naiveTC(edges)
		got := pairsOf(res.Answers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: closure has %d pairs, reference %d", trial, len(got), len(want))
		}
		if !reflect.DeepEqual(res.Vars, []string{"x", "y"}) {
			t.Fatalf("vars = %v", res.Vars)
		}
		if res.Iterations == 0 {
			t.Fatal("recursive run reports zero iterations")
		}
		// Sorted, deduplicated.
		for i := 1; i < len(res.Answers); i++ {
			if !res.Answers[i-1].Less(res.Answers[i]) {
				t.Fatal("answers not sorted/deduplicated")
			}
		}
	}
}

// TestEvalTransports: the same program over loopback and TCP worker
// pools yields identical answers and byte-identical round statistics.
func TestEvalTransports(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 0))
	edges := randomEdges(rng, 20, 36)
	const p = 4
	run := func(dial func(int) (dist.Transport, error)) *Result {
		res, err := Eval(MustParse(tcProgram), edgeDB(20, edges), Options{P: p, Seed: 5, Dial: dial})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lb := run(nil)
	tcp := run(tcpDialer(startPool(t, p)))
	if !reflect.DeepEqual(lb.Answers, tcp.Answers) {
		t.Fatalf("answers diverge: %d loopback vs %d TCP", len(lb.Answers), len(tcp.Answers))
	}
	if lb.Iterations != tcp.Iterations {
		t.Fatalf("iterations diverge: %d vs %d", lb.Iterations, tcp.Iterations)
	}
	if !reflect.DeepEqual(lb.Stats.Rounds, tcp.Stats.Rounds) {
		t.Fatalf("round stats diverge:\nloop %+v\n tcp %+v", lb.Stats.Rounds, tcp.Stats.Rounds)
	}
	if lb.Stats.TotalBits() == 0 {
		t.Fatal("no communication recorded")
	}
}

// TestEvalMutualRecursion: odd/even path lengths through one SCC of
// two predicates, against a parity-BFS reference.
func TestEvalMutualRecursion(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 0))
	edges := randomEdges(rng, 16, 26)
	prog := MustParse(`
		odd(x, y) :- e(x, y).
		odd(x, z) :- even(x, y), e(y, z).
		even(x, z) :- odd(x, y), e(y, z).
		?- odd(x, y).
	`)
	res, err := Eval(prog, edgeDB(16, edges), Options{P: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: pair (x,y,parity) reachable by a path of length ≥ 1.
	type st struct{ x, y, par int }
	seen := map[st]bool{}
	for _, e := range edges {
		seen[st{e[0], e[1], 1}] = true
	}
	for {
		grew := false
		for s := range seen {
			for _, e := range edges {
				if e[0] != s.y {
					continue
				}
				n := st{s.x, e[1], 1 - s.par}
				if !seen[n] {
					seen[n] = true
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}
	wantOdd := map[[2]int]bool{}
	wantEven := map[[2]int]bool{}
	for s := range seen {
		if s.par == 1 {
			wantOdd[[2]int{s.x, s.y}] = true
		} else {
			wantEven[[2]int{s.x, s.y}] = true
		}
	}
	if got := pairsOf(res.Answers); !reflect.DeepEqual(got, wantOdd) {
		t.Fatalf("odd: got %d pairs, want %d", len(got), len(wantOdd))
	}
	if got := pairsOf(res.Facts["even"]); !reflect.DeepEqual(got, wantEven) {
		t.Fatalf("even: got %d pairs, want %d", len(got), len(wantEven))
	}
}

// TestEvalAggregate: a grouped aggregate rule equals the
// GroupAggregate reference over the deduplicated body answers.
func TestEvalAggregate(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 0))
	edges := randomEdges(rng, 12, 50)
	db := edgeDB(12, edges)
	res, err := Eval(MustParse(`
		deg(x, count(y), max(y)) :- e(x, y).
		?- deg(x, c, m).
	`), db, Options{P: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation("e")
	want := relation.GroupAggregate(rel.Tuples, relation.GroupSpec{
		GroupBy: []int{0},
		Aggs: []relation.Aggregate{
			{Func: relation.AggCount, Col: 1},
			{Func: relation.AggMax, Col: 1},
		},
	})
	if !reflect.DeepEqual(res.Answers, want) {
		t.Fatalf("aggregate diverges:\ngot  %v\nwant %v", res.Answers, want)
	}
	if !reflect.DeepEqual(res.Vars, []string{"x", "c", "m"}) {
		t.Fatalf("vars = %v", res.Vars)
	}
}

// TestEvalStratified: an aggregate stratum reading a recursive
// stratum's output — count the nodes each node reaches.
func TestEvalStratified(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 0))
	edges := randomEdges(rng, 14, 22)
	res, err := Eval(MustParse(`
		tc(x, y) :- e(x, y).
		tc(x, z) :- tc(x, y), e(y, z).
		reaches(x, count(y)) :- tc(x, y).
		?- reaches(x, n).
	`), edgeDB(14, edges), Options{P: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for xy := range naiveTC(edges) {
		counts[xy[0]]++
	}
	want := map[[2]int]bool{}
	for x, c := range counts {
		want[[2]int{x, c}] = true
	}
	if got := pairsOf(res.Answers); !reflect.DeepEqual(got, want) {
		t.Fatalf("reach counts diverge:\ngot  %v\nwant %v", got, want)
	}
}

// TestEvalUnionRules: two rules for one non-recursive predicate union
// their facts.
func TestEvalUnionRules(t *testing.T) {
	r := relation.New("r", "a", "b")
	r.Tuples = []relation.Tuple{{1, 2}, {3, 4}}
	s := relation.New("s", "a", "b")
	s.Tuples = []relation.Tuple{{3, 4}, {5, 6}}
	db := relation.NewDatabase(8)
	db.AddRelation(r)
	db.AddRelation(s)
	res, err := Eval(MustParse(`
		u(x, y) :- r(x, y).
		u(x, y) :- s(x, y).
	`), db, Options{P: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{{1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(res.Answers, want) {
		t.Fatalf("union = %v, want %v", res.Answers, want)
	}
	if res.Iterations != 0 {
		t.Fatalf("non-recursive program reports %d iterations", res.Iterations)
	}
}

// TestEvalErrors: the EDB/IDB contract against the database.
func TestEvalErrors(t *testing.T) {
	prog := MustParse("p(x, y) :- e(x, y).")
	if _, err := Eval(prog, relation.NewDatabase(4), Options{P: 2}); err == nil {
		t.Fatal("missing EDB relation accepted")
	}
	db := edgeDB(4, [][2]int{{1, 2}})
	pRel := relation.New("p", "a", "b")
	db.AddRelation(pRel)
	if _, err := Eval(prog, db, Options{P: 2}); err == nil {
		t.Fatal("pre-populated IDB relation accepted")
	}
	tri := relation.New("e", "a", "b", "c")
	db2 := relation.NewDatabase(4)
	db2.AddRelation(tri)
	if _, err := Eval(prog, db2, Options{P: 2}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := Eval(prog, edgeDB(4, nil), Options{P: 0}); err == nil {
		t.Fatal("p = 0 accepted")
	}
}
