package datalog

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestParseBasic(t *testing.T) {
	prog, err := Parse(`
		% transitive closure
		tc(x, y) :- e(x, y).
		tc(x, z) :- tc(x, y), e(y, z).
		?- tc(a, b).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(prog.Rules))
	}
	if prog.Goal == nil || prog.Goal.Pred != "tc" || !reflect.DeepEqual(prog.Goal.Vars, []string{"a", "b"}) {
		t.Fatalf("bad goal: %+v", prog.Goal)
	}
	if got := prog.Rules[1].String(); got != "tc(x, z) :- tc(x, y), e(y, z)." {
		t.Fatalf("bad rendering: %q", got)
	}
	if !prog.IsIDB("tc") || prog.IsIDB("e") {
		t.Fatal("IDB/EDB classification wrong")
	}
	if got := prog.EDBPreds(); !reflect.DeepEqual(got, []string{"e"}) {
		t.Fatalf("EDBPreds = %v", got)
	}
	if !prog.Recursive() {
		t.Fatal("tc program should be recursive")
	}
	if prog.OutputPred() != "tc" {
		t.Fatalf("output pred = %s", prog.OutputPred())
	}
}

func TestParseAggregateHead(t *testing.T) {
	prog, err := Parse(`deg(x, count(y)) :- e(x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	r := prog.Rules[0]
	if !r.HasAggregate() {
		t.Fatal("aggregate not detected")
	}
	want := []Term{{Var: "x"}, {Var: "y", Agg: relation.AggCount}}
	if !reflect.DeepEqual(r.Head.Terms, want) {
		t.Fatalf("head terms = %+v", r.Head.Terms)
	}
	if !prog.IsAggregate("deg") {
		t.Fatal("deg should be an aggregate predicate")
	}
	if prog.Recursive() {
		t.Fatal("aggregate program is not recursive")
	}
}

// TestParseRoundTrip: the canonical rendering re-parses to an equal
// program.
func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"tc(x, y) :- e(x, y).\ntc(x, z) :- tc(x, y), e(y, z).\n?- tc(x, y).\n",
		"deg(x, count(y), max(y)) :- e(x, y).\n",
		"big(x, y, z) :- r(x, y), s(y, z).\n",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p1.String(), err)
		}
		if p1.String() != p2.String() {
			t.Fatalf("round trip changed:\n%q\n%q", p1.String(), p2.String())
		}
	}
}

// TestParseRejections is the strictness contract: every malformed or
// ill-typed program is rejected with a diagnosable error.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "no rules"},
		{"goal only", "?- e(x,y).", "no rules"},
		{"goal undefined pred", "p(x,y) :- e(x,y).\n?- q(x,y).", "no defining rule"},
		{"fact", "e(x, y).", "facts are not supported"},
		{"unterminated", "tc(x,y) :- e(x,y)", "expected ',' or '.'"},
		{"empty position", "tc(x,,y) :- e(x,y).", "expected identifier"},
		{"trailing comma", "tc(x,y) :- e(x,y,).", "expected identifier"},
		{"constant", "tc(x,y) :- e(x,1).", "constants are not supported"},
		{"lone colon", "tc(x,y) : e(x,y).", "':' not followed by '-'"},
		{"lone question", "? tc(x,y).", "'?' not followed by '-'"},
		{"arity clash", "p(x) :- e(x,y).\nq(x,y) :- p(x,y).", "arity"},
		{"unsafe head", "p(x, z) :- e(x, y).", "unsafe"},
		{"self join", "p(x,z) :- e(x,y), e(y,z).", "self-joins are not supported"},
		{"second goal", "p(x,y) :- e(x,y).\n?- p(x,y).\n?- p(a,b).", "second goal"},
		{"goal arity", "p(x,y) :- e(x,y).\n?- p(x).", "arity"},
		{"goal repeats var", "p(x,y) :- e(x,y).\n?- p(x,x).", "repeated"},
		{"unknown aggregate", "p(x, avg(y)) :- e(x,y).", "unknown aggregate"},
		{"agg body var dropped", "p(x, count(y)) :- e(x,y,z).", "missing from the head"},
		{"group after agg", "p(count(y), x) :- e(x,y).", "group variable x after an aggregate"},
		{"agg repeated group", "p(x, x, count(y)) :- e(x,y).", "repeats group variable"},
		{"agg two rules", "p(x, count(y)) :- e(x,y).\np(x, count(y)) :- f(x,y).", "exactly one defining rule"},
		{"agg in body", "d(x, count(y)) :- e(x,y).\nq(x,c) :- d(x,c).", "may not appear in a rule body"},
		{"agg recursion", "p(x, count(y)) :- p(x,y).", "may not appear in a rule body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) accepted", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse(%q) error %q does not mention %q", tc.src, err, tc.wantErr)
			}
		})
	}
}

// TestStrata: dependency-first order, recursion flags, mutual
// recursion in one stratum.
func TestStrata(t *testing.T) {
	prog, err := Parse(`
		odd(x, y) :- e(x, y).
		odd(x, z) :- even(x, y), e(y, z).
		even(x, z) :- odd(x, y), e(y, z).
		reach2(x, y) :- odd(x, y).
		?- reach2(x, y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	strata := prog.Strata()
	if len(strata) != 2 {
		t.Fatalf("got %d strata, want 2: %+v", len(strata), strata)
	}
	if !reflect.DeepEqual(strata[0].Preds, []string{"even", "odd"}) || !strata[0].Recursive {
		t.Fatalf("stratum 0 = %+v", strata[0])
	}
	if !reflect.DeepEqual(strata[1].Preds, []string{"reach2"}) || strata[1].Recursive {
		t.Fatalf("stratum 1 = %+v", strata[1])
	}

	// A self-loop makes a singleton SCC recursive.
	tc := MustParse("tc(x,y) :- e(x,y).\ntc(x,z) :- tc(x,y), e(y,z).")
	st := tc.Strata()
	if len(st) != 1 || !st[0].Recursive {
		t.Fatalf("tc strata = %+v", st)
	}

	// Non-recursive chains come out dependency-first.
	chain := MustParse(`
		top(x, y) :- mid(x, y).
		mid(x, y) :- base(x, y).
		base(x, y) :- e(x, y).
	`)
	var order []string
	for _, s := range chain.Strata() {
		if s.Recursive {
			t.Fatalf("chain stratum %v marked recursive", s.Preds)
		}
		order = append(order, s.Preds...)
	}
	if !reflect.DeepEqual(order, []string{"base", "mid", "top"}) {
		t.Fatalf("evaluation order = %v", order)
	}
}

func TestIsDatalog(t *testing.T) {
	if !IsDatalog("tc(x,y) :- e(x,y).") || !IsDatalog("?- tc(x,y).") {
		t.Fatal("datalog text not detected")
	}
	if IsDatalog("q(x,y) = R(x,y),S(y,z)") || IsDatalog("R(x,y),S(y,z)") {
		t.Fatal("CQ text misdetected as datalog")
	}
}
