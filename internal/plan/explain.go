package plan

import (
	"fmt"
	"math"
	"math/big"
	"strings"
)

// Explain renders the plan as the human-readable EXPLAIN report that
// cmd/mpcplan prints: the statistics it saw, the LP solution, the
// derived shares, the predicted load against the paper's bound and the
// ε-budget, and the engine decision with its reason.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN %s\n", p.Query)

	// Statistics line.
	sb.WriteString("  statistics:")
	for _, a := range p.Query.Atoms {
		fmt.Fprintf(&sb, " %s", p.Stats.Relation(a.Name))
	}
	sb.WriteString("\n")

	// LP solution: τ*, the packing witness, and the share exponents.
	fmt.Fprintf(&sb, "  edge-packing LP: τ* = %s, one-round space exponent ε₀ = 1 − 1/τ* = %s\n",
		p.Tau.RatString(), spaceExponentString(p))
	sb.WriteString("    packing u:")
	for j, a := range p.Query.Atoms {
		fmt.Fprintf(&sb, " %s=%s", a.Name, p.EdgePacking[j].RatString())
	}
	sb.WriteString("\n    share exponents e = v/τ*:")
	for i, v := range p.Query.Vars() {
		fmt.Fprintf(&sb, " %s=%s", v, p.ShareExponents[i].RatString())
	}
	sb.WriteString("\n")

	// Integer shares.
	src := "LP rounding"
	if p.SizeAware {
		src = "size-aware enumeration"
	}
	fmt.Fprintf(&sb, "  shares @ p=%d (%s): %s, grid %d", p.P, src, p.Shares, p.Shares.GridSize())
	if exp := sharedExponentLabel(p); exp != "" {
		fmt.Fprintf(&sb, " (p^{%s} per hashed dimension)", exp)
	}
	sb.WriteString("\n")

	// Costs against the paper bound and the ε-budget.
	fmt.Fprintf(&sb, "  predicted one-round load: %.0f tuples/worker (uniform %.0f, skew %.0f)\n",
		p.OneRoundCost.LoadTuples, p.UniformLoad, p.SkewLoad)
	fmt.Fprintf(&sb, "  paper bound Σ_j |S_j|/p^{Σe_i}: %.0f tuples/worker\n", p.BoundLoad)
	verdict := "within budget"
	if p.OneRoundCost.LoadTuples > p.BudgetLoad {
		verdict = "OVER budget"
	}
	fmt.Fprintf(&sb, "  ε-budget c·N/p^{1−ε} @ ε=%s: %.0f tuples/worker — one round %s\n",
		p.Epsilon.RatString(), p.BudgetLoad, verdict)
	fmt.Fprintf(&sb, "  predicted communication: %d tuple copies (%.2f× input)\n",
		p.OneRoundCost.CommTuples, float64(p.OneRoundCost.CommTuples)/math.Max(1, float64(p.Stats.TotalTuples())))

	// Alternatives considered.
	if p.MultiCost != nil {
		fmt.Fprintf(&sb, "  multiround alternative: %s, predicted load %.0f tuples/worker/round, %d tuple copies\n",
			roundsWord(p.MultiCost.Rounds), p.MultiCost.LoadTuples, p.MultiCost.CommTuples)
	}
	if p.SkewMap != nil {
		if len(p.Heavy) > 0 {
			fmt.Fprintf(&sb, "  heavy hitters on %s (threshold %d):", p.SkewMap.YVar, p.HeavyThreshold)
			for i, vc := range p.Heavy {
				if i == 4 {
					fmt.Fprintf(&sb, " … %d more", len(p.Heavy)-i)
					break
				}
				fmt.Fprintf(&sb, " %d×%d", vc.Value, vc.Count)
			}
			sb.WriteString("\n")
		} else {
			fmt.Fprintf(&sb, "  heavy hitters on %s: none above threshold %d\n", p.SkewMap.YVar, p.HeavyThreshold)
		}
	}

	// Aggregation rides the gather; it changes the output, not the plan.
	if p.Aggregate != nil {
		fmt.Fprintf(&sb, "  aggregate (folded into the gather merge): %s → (%s)\n",
			p.Aggregate, strings.Join(p.AggVars, ","))
	}

	// The decision.
	fmt.Fprintf(&sb, "  engine: %s (%s, predicted load %.0f tuples/worker)\n",
		p.Engine, roundsWord(p.Cost.Rounds), p.Cost.LoadTuples)
	fmt.Fprintf(&sb, "    reason: %s\n", p.Reason)
	if p.Engine == MultiRound && p.Multi != nil {
		for _, line := range strings.Split(strings.TrimRight(p.Multi.String(), "\n"), "\n") {
			fmt.Fprintf(&sb, "    %s\n", line)
		}
	}
	return sb.String()
}

// String is Explain, so a Plan prints usefully with %v.
func (p *Plan) String() string { return p.Explain() }

// roundsWord pluralizes a round count.
func roundsWord(n int) string {
	if n == 1 {
		return "1 round"
	}
	return fmt.Sprintf("%d rounds", n)
}

// spaceExponentString renders 1 − 1/τ* from the plan's τ*.
func spaceExponentString(p *Plan) string {
	inv := new(big.Rat).Inv(p.Tau)
	return new(big.Rat).Sub(big.NewRat(1, 1), inv).RatString()
}

// sharedExponentLabel returns the common share exponent when every
// hashed dimension (share > 1) has the same LP exponent — "1/3" for
// the triangle's p^{1/3}×p^{1/3}×p^{1/3} grid — and "" otherwise.
// Shares that no longer follow the LP (size-aware enumeration, manual
// -plan overrides) carry no exponent label.
func sharedExponentLabel(p *Plan) string {
	if p.SizeAware || p.manualShares {
		return ""
	}
	label := ""
	for i, v := range p.Query.Vars() {
		d := p.Shares.DimOf(v)
		if d < 0 {
			return ""
		}
		if p.Shares.Dims[d] <= 1 && p.ShareExponents[i].Sign() == 0 {
			continue
		}
		e := p.ShareExponents[i].RatString()
		if label == "" {
			label = e
		} else if label != e {
			return ""
		}
	}
	return label
}
