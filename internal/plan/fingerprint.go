package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/query"
)

// CacheKey is the canonical identity of a planning problem: everything
// plan.Build consumes except the statistics themselves. Two calls with
// equal CacheKeys and statistics from the same (immutable) dataset
// produce interchangeable plans, so a serving layer may cache the Plan
// under Fingerprint and reuse it across requests.
//
// The query is identified by its exact text rendering (atom order,
// atom names, variable names) — syntactic identity, not isomorphism:
// two isomorphic spellings plan twice, which only costs a duplicate
// cache entry, never a wrong answer.
type CacheKey struct {
	// Query is the planned query.
	Query *query.Query
	// Dataset names the statistics source (the registry name of the
	// resident dataset; "" for ad-hoc databases).
	Dataset string
	// Version is the dataset's delta version: 0 for an immutable or
	// ad-hoc database, and the monotone per-dataset counter after
	// delta ingestion. Distinct versions have distinct statistics, so
	// they must plan (and cache) separately.
	Version uint64
	// Opts are the planner options the plan was or will be built with.
	Opts Options
}

// String renders the key's canonical form, suitable for exact-match
// map lookups and human inspection.
func (k CacheKey) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "q=%s|ds=%s|p=%d", k.Query, k.Dataset, k.Opts.P)
	if k.Version != 0 {
		// Rendered only when set, so version-0 keys keep their historic
		// canonical form (and fingerprints) byte-for-byte.
		fmt.Fprintf(&sb, "|v=%d", k.Version)
	}
	if k.Opts.Epsilon != nil {
		fmt.Fprintf(&sb, "|eps=%s", k.Opts.Epsilon.RatString())
	}
	if k.Opts.CapFactor > 0 {
		fmt.Fprintf(&sb, "|cap=%g", k.Opts.CapFactor)
	}
	if k.Opts.HeavyFactor > 0 {
		fmt.Fprintf(&sb, "|heavy=%g", k.Opts.HeavyFactor)
	}
	return sb.String()
}

// Fingerprint returns a short stable digest of the canonical form —
// the cache key the serving layer stores compiled plans under.
func (k CacheKey) Fingerprint() string {
	sum := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(sum[:8])
}

// Fingerprint digests the plan's own planning problem: the query it
// was built for and the effective options it was built with (p, the
// resolved ε, the budget and heavy-hitter factors). Plans built from
// equal CacheKeys report equal fingerprints.
func (p *Plan) Fingerprint() string {
	return CacheKey{
		Query: p.Query,
		Opts: Options{
			P:           p.P,
			Epsilon:     p.Epsilon,
			CapFactor:   p.capFactor,
			HeavyFactor: p.heavyFactor,
		},
	}.Fingerprint()
}
