package plan

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/hypercube"
	"repro/internal/localjoin"
	"repro/internal/mpc"
	"repro/internal/multiround"
	"repro/internal/relation"
	"repro/internal/skew"
	"repro/internal/trace"
)

// ExecOptions configures Plan.Execute.
type ExecOptions struct {
	// Seed drives every hash function of the run.
	Seed uint64
	// CapConstant enables receive-budget enforcement in the engine when
	// positive (c in c·N/p^{1−ε} bits).
	CapConstant float64
	// Strategy selects the per-worker local join algorithm; the zero
	// value is localjoin.Default (the worst-case-optimal join).
	Strategy localjoin.Strategy
	// Transport selects the worker pool the execution runs on
	// (internal/dist): nil is the in-process loopback, a dist.TCP
	// value runs the rounds against remote mpcworker processes. The
	// pool size must equal the plan's P. A transport is one execution
	// session — do not share one across concurrent Execute calls.
	Transport dist.Transport
	// Context bounds a distributed execution (cancellation, deadline);
	// nil selects context.Background().
	Context context.Context
	// Recovery is the self-healing policy, threaded through to the
	// engine's cluster: with Enabled set, a worker failure mid-query
	// triggers replacement and replay instead of aborting.
	Recovery dist.RecoveryOptions
	// Pipeline defers scatter/barrier/join traffic to the engine's
	// gather fences so workers overlap local joins with in-flight
	// deliveries (dist.Cluster.EnablePipelining). Off by default;
	// answers and round statistics are identical either way.
	Pipeline bool
	// Trace, when non-nil, records per-round per-worker spans of the
	// execution, threaded through to the engine's cluster
	// (dist.Cluster.EnableTracing); nil disables tracing.
	Trace *trace.Trace
}

// Result reports a planner-driven execution.
type Result struct {
	// Answers is the full answer set in Query.Vars() order, sorted and
	// deduplicated.
	Answers []relation.Tuple
	// Engine is the strategy that actually ran.
	Engine Engine
	// Rounds is the number of communication rounds used.
	Rounds int
	// Stats is the engine's communication record.
	Stats *mpc.Stats
	// CapExceeded reports whether any worker broke the receive budget.
	CapExceeded bool
	// Replacements counts the workers replaced mid-query by the
	// recovery policy.
	Replacements int
	// Shares is the grid geometry (one-round engine only, nil
	// otherwise).
	Shares *hypercube.Shares
}

// Execute runs the plan's chosen engine on db end to end through the
// columnar exchange layer and returns the answers in the original
// query's variable order.
//
// Execute is safe for concurrent use: it treats both the plan and db
// as read-only and allocates per-call state (cluster, hash functions,
// buffers), so many executions — of the same plan or of different
// plans over a shared database — may run in parallel.
func (p *Plan) Execute(db *relation.Database, opts ExecOptions) (*Result, error) {
	switch p.Engine {
	case OneRound:
		return p.executeOneRound(db, opts)
	case MultiRound:
		if p.Multi == nil {
			return nil, fmt.Errorf("plan: multiround engine selected but no Γ^r_ε plan was built")
		}
		res, err := multiround.Execute(p.Multi, db, p.P, multiround.Options{
			CapConstant: opts.CapConstant,
			Seed:        opts.Seed,
			Strategy:    opts.Strategy,
			Transport:   opts.Transport,
			Context:     opts.Context,
			Recovery:    opts.Recovery,
			Pipeline:    opts.Pipeline,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Answers:      p.foldAggregate(res.Answers),
			Engine:       MultiRound,
			Rounds:       res.Rounds,
			Stats:        res.Stats,
			CapExceeded:  res.CapExceeded,
			Replacements: res.Replacements,
		}, nil
	case SkewJoin:
		return p.executeSkewJoin(db, opts)
	default:
		return nil, fmt.Errorf("plan: unknown engine %v", p.Engine)
	}
}

func (p *Plan) executeOneRound(db *relation.Database, opts ExecOptions) (*Result, error) {
	epsF, _ := p.Epsilon.Float64()
	res, err := hypercube.RunWithShares(p.Query, db, p.P, p.Shares, hypercube.Options{
		Epsilon:     epsF,
		CapConstant: opts.CapConstant,
		Seed:        opts.Seed,
		Strategy:    opts.Strategy,
		Transport:   opts.Transport,
		Context:     opts.Context,
		Recovery:    opts.Recovery,
		Pipeline:    opts.Pipeline,
		Trace:       opts.Trace,
		Aggregate:   p.Aggregate,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Answers:      res.Answers,
		Engine:       OneRound,
		Rounds:       res.Stats.NumRounds(),
		Stats:        res.Stats,
		CapExceeded:  res.CapExceeded,
		Replacements: res.Replacements,
		Shares:       res.Shares,
	}, nil
}

// executeSkewJoin maps the query onto the canonical R(x,y) ⋈ S(y,z)
// shape, runs the resilient heavy-hitter discipline, and maps the
// (x,y,z) answers back into Query.Vars() order.
func (p *Plan) executeSkewJoin(db *relation.Database, opts ExecOptions) (*Result, error) {
	m := p.SkewMap
	if m == nil {
		return nil, fmt.Errorf("plan: skew engine selected but query %s is not a two-atom binary join", p.Query.Name)
	}
	relR, ok := db.Relation(m.R)
	if !ok {
		return nil, fmt.Errorf("plan: database missing relation %s", m.R)
	}
	relS, ok := db.Relation(m.S)
	if !ok {
		return nil, fmt.Errorf("plan: database missing relation %s", m.S)
	}
	r := remapBinary(relR, "R", []string{"x", "y"}, 1-m.RY, m.RY)
	s := remapBinary(relS, "S", []string{"y", "z"}, m.SY, 1-m.SY)
	res, err := skew.RunJoin(r, s, p.P, skew.Resilient, skew.Options{
		Seed:        opts.Seed,
		CapConstant: opts.CapConstant,
		HeavyFactor: p.heavyFactor,
		Transport:   opts.Transport,
		Context:     opts.Context,
		Recovery:    opts.Recovery,
		Pipeline:    opts.Pipeline,
		Trace:       opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	// res.Answers are (x,y,z); project into Query.Vars() order.
	roleOf := map[string]int{m.XVar: 0, m.YVar: 1, m.ZVar: 2}
	vars := p.Query.Vars()
	answers := make([]relation.Tuple, len(res.Answers))
	for i, t := range res.Answers {
		row := make(relation.Tuple, len(vars))
		for j, v := range vars {
			row[j] = t[roleOf[v]]
		}
		answers[i] = row
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i].Less(answers[j]) })
	return &Result{
		Answers:      p.foldAggregate(answers),
		Engine:       SkewJoin,
		Rounds:       res.Stats.NumRounds(),
		Stats:        res.Stats,
		CapExceeded:  res.CapExceeded,
		Replacements: res.Replacements,
	}, nil
}

// foldAggregate applies the plan's grouped aggregate to a final
// answer set when one is configured. The one-round engine folds in
// the gather merge instead; the multiround and skew engines reorder
// their final answers into Query.Vars() order first, so the fold runs
// here at the coordinator on the restored order.
func (p *Plan) foldAggregate(answers []relation.Tuple) []relation.Tuple {
	if p.Aggregate == nil {
		return answers
	}
	return relation.GroupAggregate(answers, *p.Aggregate)
}

// remapBinary returns a column-reordered copy of a binary relation
// under a new name and schema: position 0 of the output reads input
// column c0, position 1 reads c1.
func remapBinary(src *relation.Relation, name string, attrs []string, c0, c1 int) *relation.Relation {
	out := relation.New(name, attrs...)
	out.Tuples = make([]relation.Tuple, len(src.Tuples))
	for i, t := range src.Tuples {
		out.Tuples[i] = relation.Tuple{t[c0], t[c1]}
	}
	return out
}

// WithShares returns a copy of the plan forced onto the one-round
// engine with the given integer shares — the cmd/mpcrun -plan manual
// override. Cost estimates are recomputed for the new grid.
func (p *Plan) WithShares(shares *hypercube.Shares) (*Plan, error) {
	if shares.GridSize() > p.P {
		return nil, fmt.Errorf("plan: manual grid %d exceeds %d servers", shares.GridSize(), p.P)
	}
	for _, v := range p.Query.Vars() {
		if shares.DimOf(v) < 0 {
			return nil, fmt.Errorf("plan: manual shares missing variable %s", v)
		}
	}
	out := *p
	out.Shares = shares
	out.SizeAware = false
	uniform, skewLoad := oneRoundLoad(p.Query, p.Stats, shares)
	comm, err := hypercube.CommunicationCost(p.Query, shares, p.Stats.Sizes())
	if err != nil {
		return nil, err
	}
	out.UniformLoad, out.SkewLoad = uniform, skewLoad
	out.OneRoundCost = CostEstimate{
		LoadTuples: math.Max(uniform, skewLoad),
		CommTuples: comm,
		Rounds:     1,
	}
	out.Engine = OneRound
	out.Cost = out.OneRoundCost
	out.Reason = "manual share override (-plan)"
	out.manualShares = true
	return &out, nil
}

// WithEngine returns a copy of the plan forced onto the given engine —
// the cmd/mpcrun -plan manual override. It errors when the plan lacks
// what the engine needs (no Γ^r_ε decomposition, or not the two-atom
// join shape).
func (p *Plan) WithEngine(e Engine) (*Plan, error) {
	out := *p
	out.Engine = e
	out.Reason = "manual engine override (-plan)"
	switch e {
	case OneRound:
		out.Cost = p.OneRoundCost
	case MultiRound:
		if p.Multi == nil {
			return nil, fmt.Errorf("plan: no multiround decomposition of %s at ε=%s",
				p.Query.Name, p.Epsilon.RatString())
		}
		out.Cost = *p.MultiCost
	case SkewJoin:
		if p.SkewMap == nil {
			return nil, fmt.Errorf("plan: query %s is not a two-atom binary join", p.Query.Name)
		}
		out.Cost = CostEstimate{
			LoadTuples: skewJoinLoad(p),
			CommTuples: p.OneRoundCost.CommTuples,
			Rounds:     1,
		}
	default:
		return nil, fmt.Errorf("plan: unknown engine %v", e)
	}
	return &out, nil
}
