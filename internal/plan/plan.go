// Package plan is the statistics-driven query planner of the
// reproduction: it turns a parsed conjunctive query plus relation
// statistics (relation.Stats — cardinalities and heavy-hitter counts)
// into an executable, explainable Plan.
//
// The planner follows the paper's recipe end to end. It solves the two
// dual LPs of Figure 1 of Beame, Koutris, Suciu (PODS 2013) — the
// fractional vertex cover and the fractional edge packing — through
// internal/cover and internal/lp, derives the per-variable HyperCube
// share exponents e_i = v_i/τ* (Section 3.1), and rounds them to an
// integer share vector for the target p (size-aware enumeration in the
// Afrati–Ullman style when relation cardinalities differ). From the
// statistics it predicts the per-worker per-round maximum load and the
// total communication, compares them against the MPC(ε) budget
// c·N/p^{1−ε}, and selects the engine:
//
//   - one-round HyperCube (Theorem 1.1) when the predicted one-round
//     load fits the budget,
//   - the multi-round Γ^r_ε decomposition (Section 4.1) when it does
//     not and a plan with smaller per-round load exists,
//   - skew-aware heavy-hitter routing (internal/skew, after Koutris &
//     Suciu PODS 2011, to which the paper defers on skew) when the
//     statistics show a join value above the |R|/p-scale threshold that
//     would overload the server owning it under hash routing.
//
// Plan.Explain renders the decision for humans (the cmd/mpcplan
// EXPLAIN output); Plan.Execute runs the chosen engine end to end
// through the columnar exchange layer.
package plan

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"repro/internal/cover"
	"repro/internal/hypercube"
	"repro/internal/multiround"
	"repro/internal/query"
	"repro/internal/relation"
)

// Engine identifies the execution strategy a Plan selects.
type Engine int

// Available engines.
const (
	// OneRound is the HyperCube algorithm: one shuffle onto the share
	// grid, one local join per worker (Theorem 1.1).
	OneRound Engine = iota
	// MultiRound is the Γ^r_ε decomposition: several rounds of smaller
	// joins, each one-round computable at the given ε (Section 4.1).
	MultiRound
	// SkewJoin is the heavy-hitter-resilient two-relation join: heavy
	// values get proportional server blocks, light values hash as usual
	// (internal/skew, Resilient mode).
	SkewJoin
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case OneRound:
		return "one-round hypercube"
	case MultiRound:
		return "multiround decomposition"
	case SkewJoin:
		return "skew-aware routing"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures Build.
type Options struct {
	// P is the number of servers. Required, ≥ 1.
	P int
	// Epsilon is the space exponent ε ∈ [0,1) of the MPC(ε) budget the
	// plan must respect. nil selects the query's own one-round exponent
	// 1 − 1/τ* (Theorem 1.1), under which one round always fits on
	// skew-free inputs.
	Epsilon *big.Rat
	// CapFactor is the constant c of the per-worker budget
	// c·N/p^{1−ε} (in tuples) the planner compares predicted loads
	// against; ≤ 0 selects 2.
	CapFactor float64
	// HeavyFactor scales the heavy-hitter threshold
	// HeavyFactor·(Σ|S_j|)/p; ≤ 0 selects 1.
	HeavyFactor float64
}

// CostEstimate is the planner's prediction for one engine.
type CostEstimate struct {
	// LoadTuples is the predicted maximum per-worker per-round received
	// tuple count.
	LoadTuples float64
	// CommTuples is the predicted total number of tuple copies
	// shuffled over all rounds.
	CommTuples int64
	// Rounds is the number of communication rounds.
	Rounds int
}

// JoinMapping describes how a two-atom binary equi-join maps onto the
// canonical skew join q(x,y,z) = R(x,y) ⋈ S(y,z): which atom plays R,
// which plays S, and which column of each holds the shared variable.
type JoinMapping struct {
	// R and S are the atom names playing the two sides.
	R, S string
	// RY and SY are the column positions of the shared variable in R
	// and S.
	RY, SY int
	// XVar, YVar, ZVar are the query variables in the roles x, y, z.
	XVar, YVar, ZVar string
}

// Plan is an executable, explainable query plan.
//
// A Plan is immutable after Build: Execute reads the plan and the
// database but mutates neither (each execution builds its own
// mpc.Cluster, hashers, and output buffers), and the override methods
// WithShares/WithEngine return modified copies. One cached Plan may
// therefore be Executed concurrently from many goroutines — the
// contract the serving layer's plan cache relies on.
type Plan struct {
	// Query is the planned query.
	Query *query.Query
	// Stats is the statistics catalog the plan was derived from.
	Stats *relation.Stats
	// P is the number of servers.
	P int
	// Epsilon is the space exponent the plan was built for.
	Epsilon *big.Rat
	// Tau is τ*(q), the common optimum of the Figure 1 LPs.
	Tau *big.Rat
	// ShareExponents are the LP-derived exponents e_i = v_i/τ*, indexed
	// like Query.Vars().
	ShareExponents []*big.Rat
	// EdgePacking is the optimal fractional edge packing u_j, indexed
	// like Query.Atoms (the dual witness of τ*).
	EdgePacking []*big.Rat
	// Shares is the integer share vector for p servers.
	Shares *hypercube.Shares
	// SizeAware reports whether Shares came from size-aware enumeration
	// over the statistics (differing cardinalities) rather than from
	// rounding the LP exponents directly.
	SizeAware bool

	// Engine is the selected execution strategy.
	Engine Engine
	// Reason is a one-line human-readable justification of the choice.
	Reason string
	// Multi is the Γ^r_ε plan; non-nil whenever one was buildable (it
	// is the executed plan only when Engine == MultiRound).
	Multi *multiround.Plan
	// SkewMap is the join-shape mapping; non-nil when the query has the
	// two-atom binary join shape (executed only when Engine == SkewJoin).
	SkewMap *JoinMapping
	// Heavy lists the detected heavy hitters on the join variable,
	// descending by combined frequency.
	Heavy []relation.ValueCount
	// HeavyThreshold is the frequency above which a value counts as
	// heavy: HeavyFactor·(Σ|S_j|)/p.
	HeavyThreshold int

	// OneRoundCost is the one-round HyperCube estimate (always
	// populated).
	OneRoundCost CostEstimate
	// MultiCost is the multiround estimate; non-nil iff Multi is.
	MultiCost *CostEstimate
	// Cost is the chosen engine's estimate.
	Cost CostEstimate
	// BoundLoad is the paper's one-round load bound
	// Σ_j |S_j| / p^{Σ_{i ∈ vars(S_j)} e_i} in tuples per worker —
	// O(n/p^{1−ε₀}) with the exact constants of Proposition 3.2.
	BoundLoad float64
	// BudgetLoad is the MPC(ε) per-worker budget c·N/p^{1−ε} in tuples.
	BudgetLoad float64
	// UniformLoad is the skew-free component of the one-round estimate
	// (every hash spreads its relation evenly).
	UniformLoad float64
	// SkewLoad is the skew component of the one-round estimate: the
	// load of the worker owning the most frequent value of each hashed
	// dimension.
	SkewLoad float64

	// Aggregate, when non-nil, turns Execute's answer into grouped
	// aggregates over the head: the spec's column indices refer to
	// Query.Vars(). Set by WithAggregate. The one-round engine folds it
	// into the gather's k-way merge; the other engines fold at the
	// coordinator after restoring their final answer order.
	Aggregate *relation.GroupSpec
	// AggVars names the aggregated output columns — the group-by
	// variables followed by the "func(var)" terms — indexed like the
	// aggregated answer tuples. Nil when Aggregate is.
	AggVars []string

	heavyFactor  float64
	capFactor    float64
	manualShares bool // set by WithShares: Shares no longer follow the LP
}

// OutputVars names the columns of Execute's answer tuples: the
// aggregated output columns under WithAggregate, Query.Vars()
// otherwise.
func (p *Plan) OutputVars() []string {
	if p.Aggregate != nil {
		return p.AggVars
	}
	return p.Query.Vars()
}

// WithAggregate returns a copy of the plan whose execution folds the
// answer into grouped aggregates. The spec's column indices refer to
// Query.Vars(); engine choice, shares, and cost estimates are
// untouched (the fold adds no communication — it rides the gather).
func (p *Plan) WithAggregate(spec relation.GroupSpec) (*Plan, error) {
	if err := spec.Validate(p.Query.NumVars()); err != nil {
		return nil, err
	}
	vars := p.Query.Vars()
	cols := make([]string, 0, spec.OutArity())
	for _, c := range spec.GroupBy {
		cols = append(cols, vars[c])
	}
	for _, a := range spec.Aggs {
		cols = append(cols, fmt.Sprintf("%s(%s)", a.Func, vars[a.Col]))
	}
	out := *p
	out.Aggregate = &spec
	out.AggVars = cols
	return &out, nil
}

// Build plans q over the given statistics. Every atom of q must have a
// stats entry (collect them with relation.CollectStats, or synthesize
// matching-shaped ones with MatchingStats).
func Build(q *query.Query, stats *relation.Stats, opts Options) (*Plan, error) {
	if opts.P < 1 {
		return nil, fmt.Errorf("plan: p = %d", opts.P)
	}
	if stats == nil {
		return nil, fmt.Errorf("plan: nil stats (use relation.CollectStats or plan.MatchingStats)")
	}
	for _, a := range q.Atoms {
		if stats.Relation(a.Name) == nil {
			return nil, fmt.Errorf("plan: no statistics for relation %s", a.Name)
		}
	}
	cr, err := cover.Solve(q)
	if err != nil {
		return nil, err
	}
	eps := opts.Epsilon
	if eps == nil {
		eps = cr.SpaceExponent()
	}
	if eps.Sign() < 0 || eps.Cmp(big.NewRat(1, 1)) >= 0 {
		return nil, fmt.Errorf("plan: ε = %s outside [0,1)", eps.RatString())
	}
	capFactor := opts.CapFactor
	if capFactor <= 0 {
		capFactor = 2
	}
	heavyFactor := opts.HeavyFactor
	if heavyFactor <= 0 {
		heavyFactor = 1
	}

	p := &Plan{
		Query:          q,
		Stats:          stats,
		P:              opts.P,
		Epsilon:        new(big.Rat).Set(eps),
		Tau:            cr.Tau,
		ShareExponents: cr.ShareExponents(),
		EdgePacking:    cr.EdgePacking,
		heavyFactor:    heavyFactor,
		capFactor:      capFactor,
	}

	// Integer shares: LP-exponent rounding on uniform cardinalities,
	// size-aware enumeration (Afrati–Ullman style) when they differ.
	sizes := stats.Sizes()
	if differingSizes(q, sizes) && q.NumVars() <= 10 {
		shares, err := hypercube.OptimalSharesForSizes(q, sizes, opts.P)
		if err != nil {
			return nil, err
		}
		p.Shares, p.SizeAware = shares, true
	} else {
		shares, err := hypercube.ComputeShares(q.Vars(), cr.ShareExponentFloats(), opts.P, hypercube.GreedyRounding)
		if err != nil {
			return nil, err
		}
		p.Shares = shares
	}

	// One-round estimates.
	uniform, skewLoad := oneRoundLoad(q, stats, p.Shares)
	comm, err := hypercube.CommunicationCost(q, p.Shares, sizes)
	if err != nil {
		return nil, err
	}
	p.UniformLoad, p.SkewLoad = uniform, skewLoad
	p.OneRoundCost = CostEstimate{
		LoadTuples: math.Max(uniform, skewLoad),
		CommTuples: comm,
		Rounds:     1,
	}
	p.BoundLoad = paperBound(q, stats, p.ShareExponents, opts.P)
	epsF, _ := eps.Float64()
	p.BudgetLoad = capFactor * float64(stats.TotalTuples()) / math.Pow(float64(opts.P), 1-epsF)

	// Multiround alternative (connected multi-atom queries only; Build
	// fails when no step makes progress at this ε, which just removes
	// the alternative).
	if q.Connected() && q.NumAtoms() > 1 {
		if mp, err := multiround.Build(q, eps); err == nil {
			p.Multi = mp
			mc, err := multiroundCost(mp, stats, opts.P)
			if err != nil {
				return nil, err
			}
			p.MultiCost = mc
		}
	}

	// Skew detection on the canonical join shape. The threshold is at
	// least 1 so that tiny inputs (total < p) do not classify every
	// value as heavy.
	p.SkewMap = detectJoinMapping(q)
	if p.SkewMap != nil {
		p.HeavyThreshold = int(heavyFactor * float64(stats.TotalTuples()) / float64(opts.P))
		if p.HeavyThreshold < 1 {
			p.HeavyThreshold = 1
		}
		p.Heavy = combinedHeavy(stats, p.SkewMap, p.HeavyThreshold)
	}

	p.selectEngine()
	return p, nil
}

// selectEngine applies the paper's fallback order: skew-aware routing
// when the statistics show heavy hitters whose predicted load breaks
// the ε-budget (a heavy value alone is not enough — on near-uniform
// inputs plain hashing still fits), otherwise one round when its
// predicted load fits the budget, otherwise the multiround plan when
// it exists and predicts a smaller per-round load.
func (p *Plan) selectEngine() {
	switch {
	case len(p.Heavy) > 0 && p.SkewLoad > p.BudgetLoad:
		p.Engine = SkewJoin
		p.Cost = CostEstimate{
			LoadTuples: skewJoinLoad(p),
			CommTuples: p.OneRoundCost.CommTuples,
			Rounds:     1,
		}
		p.Reason = fmt.Sprintf("heavy hitter on %s (top frequency %d > threshold %d) would overload hash routing",
			p.SkewMap.YVar, p.Heavy[0].Count, p.HeavyThreshold)
	case p.OneRoundCost.LoadTuples <= p.BudgetLoad || p.Multi == nil:
		p.Engine = OneRound
		p.Cost = p.OneRoundCost
		if p.OneRoundCost.LoadTuples <= p.BudgetLoad {
			p.Reason = fmt.Sprintf("predicted load %.0f fits the ε-budget %.0f in a single round",
				p.OneRoundCost.LoadTuples, p.BudgetLoad)
		} else {
			p.Reason = fmt.Sprintf("predicted load %.0f exceeds the ε-budget %.0f but no multiround decomposition exists at ε=%s",
				p.OneRoundCost.LoadTuples, p.BudgetLoad, p.Epsilon.RatString())
		}
	case p.MultiCost.LoadTuples < p.OneRoundCost.LoadTuples:
		p.Engine = MultiRound
		p.Cost = *p.MultiCost
		p.Reason = fmt.Sprintf("one-round load %.0f exceeds the ε-budget %.0f; %s cut the per-round load to %.0f",
			p.OneRoundCost.LoadTuples, p.BudgetLoad, roundsWord(p.MultiCost.Rounds), p.MultiCost.LoadTuples)
	default:
		p.Engine = OneRound
		p.Cost = p.OneRoundCost
		p.Reason = fmt.Sprintf("over budget either way; one round predicts no more load (%.0f) than %s (%.0f)",
			p.OneRoundCost.LoadTuples, roundsWord(p.MultiCost.Rounds), p.MultiCost.LoadTuples)
	}
}

// differingSizes reports whether the atoms' cardinalities are not all
// equal.
func differingSizes(q *query.Query, sizes map[string]int) bool {
	first, ok := -1, false
	for _, a := range q.Atoms {
		if !ok {
			first, ok = sizes[a.Name], true
			continue
		}
		if sizes[a.Name] != first {
			return true
		}
	}
	return false
}

// oneRoundLoad predicts the per-worker received tuple count of the
// HyperCube shuffle. The uniform part assumes hashing spreads each
// relation evenly: server loads are |S_j| / Π_{d ∈ dims(S_j)} p_d
// summed over atoms. The skew part is the load of the worker owning
// the most frequent value of some hashed dimension: that value's
// tuples keep one coordinate fixed and spread only over the atom's
// remaining mentioned dimensions.
func oneRoundLoad(q *query.Query, stats *relation.Stats, shares *hypercube.Shares) (uniform, skew float64) {
	for _, a := range q.Atoms {
		rs := stats.Relation(a.Name)
		denom := 1.0
		seen := map[int]bool{}
		for _, v := range a.DistinctVars() {
			if d := shares.DimOf(v); d >= 0 && !seen[d] {
				seen[d] = true
				denom *= float64(shares.Dims[d])
			}
		}
		uniform += float64(rs.Count) / denom
		for pos, v := range a.Vars {
			d := shares.DimOf(v)
			if d < 0 || shares.Dims[d] <= 1 {
				continue
			}
			cs := rs.Col(pos)
			if cs == nil {
				continue
			}
			if s := float64(cs.MaxFreq) / (denom / float64(shares.Dims[d])); s > skew {
				skew = s
			}
		}
	}
	return uniform, skew
}

// paperBound evaluates the Proposition 3.2 load bound with the exact
// LP exponents (no integer rounding): Σ_j |S_j| / p^{Σ_{i∈vars(S_j)} e_i}.
// For C3 this is 3·n/p^{2/3}; for any q it is O(n/p^{1−ε₀}).
func paperBound(q *query.Query, stats *relation.Stats, exps []*big.Rat, p int) float64 {
	bound := 0.0
	for _, a := range q.Atoms {
		rs := stats.Relation(a.Name)
		expSum := 0.0
		for _, v := range a.DistinctVars() {
			if i := q.VarIndex(v); i >= 0 {
				e, _ := exps[i].Float64()
				expSum += e
			}
		}
		bound += float64(rs.Count) / math.Pow(float64(p), expSum)
	}
	return bound
}

// multiroundCost estimates a Γ^r_ε plan: per round, every multi-atom
// group shuffles its inputs onto its own share grid; the view a group
// materializes is estimated at the size of its largest input — exact
// for joins of matchings (χ = 0 components keep cardinality n,
// Lemma 3.4) and conservative for χ < 0.
func multiroundCost(mp *multiround.Plan, stats *relation.Stats, p int) (*CostEstimate, error) {
	est := &CostEstimate{Rounds: mp.Rounds()}
	sizes := stats.Sizes()
	for _, step := range mp.Steps {
		roundLoad := 0.0
		communicated := false
		for _, g := range step.Groups {
			if g.Query == nil {
				// Passthrough: no communication; the view keeps its size.
				sizes[g.View] = sizes[g.Atoms[0]]
				continue
			}
			communicated = true
			gcr, err := cover.Solve(g.Query)
			if err != nil {
				return nil, err
			}
			shares, err := hypercube.ComputeShares(g.Query.Vars(), gcr.ShareExponentFloats(), p, hypercube.GreedyRounding)
			if err != nil {
				return nil, err
			}
			groupSizes := make(map[string]int, g.Query.NumAtoms())
			viewSize := 0
			for _, a := range g.Query.Atoms {
				sz, ok := sizes[a.Name]
				if !ok {
					return nil, fmt.Errorf("plan: no size estimate for %s", a.Name)
				}
				groupSizes[a.Name] = sz
				if sz > viewSize {
					viewSize = sz
				}
				denom := 1.0
				seen := map[int]bool{}
				for _, v := range a.DistinctVars() {
					if d := shares.DimOf(v); d >= 0 && !seen[d] {
						seen[d] = true
						denom *= float64(shares.Dims[d])
					}
				}
				roundLoad += float64(sz) / denom
			}
			comm, err := hypercube.CommunicationCost(g.Query, shares, groupSizes)
			if err != nil {
				return nil, err
			}
			est.CommTuples += comm
			sizes[g.View] = viewSize
		}
		if communicated && roundLoad > est.LoadTuples {
			est.LoadTuples = roundLoad
		}
	}
	return est, nil
}

// detectJoinMapping recognizes the canonical skew-join shape: exactly
// two binary atoms, no repeated variables within an atom, sharing
// exactly one variable (three distinct variables overall).
func detectJoinMapping(q *query.Query) *JoinMapping {
	if q.NumAtoms() != 2 || q.NumVars() != 3 {
		return nil
	}
	a, b := q.Atoms[0], q.Atoms[1]
	if a.Arity() != 2 || b.Arity() != 2 ||
		a.Vars[0] == a.Vars[1] || b.Vars[0] == b.Vars[1] {
		return nil
	}
	var shared string
	for _, av := range a.Vars {
		for _, bv := range b.Vars {
			if av == bv {
				shared = av
			}
		}
	}
	if shared == "" {
		return nil
	}
	m := &JoinMapping{R: a.Name, S: b.Name, YVar: shared}
	for pos, v := range a.Vars {
		if v == shared {
			m.RY = pos
		} else {
			m.XVar = v
		}
	}
	for pos, v := range b.Vars {
		if v == shared {
			m.SY = pos
		} else {
			m.ZVar = v
		}
	}
	return m
}

// combinedHeavy merges both sides' per-column top lists on the shared
// variable and returns the values whose combined frequency exceeds the
// threshold, descending.
func combinedHeavy(stats *relation.Stats, m *JoinMapping, threshold int) []relation.ValueCount {
	counts := make(map[int]int)
	for _, side := range []struct {
		rel string
		col int
	}{{m.R, m.RY}, {m.S, m.SY}} {
		rs := stats.Relation(side.rel)
		cs := rs.Col(side.col)
		if cs == nil {
			continue
		}
		for _, vc := range cs.Top {
			counts[vc.Value] += vc.Count
		}
	}
	var out []relation.ValueCount
	for v, c := range counts {
		if c > threshold {
			out = append(out, relation.ValueCount{Value: v, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// skewJoinLoad predicts the resilient discipline's per-worker load:
// the light values hash uniformly, and each heavy value costs its
// split side spread over its proportional block plus the broadcast of
// the smaller side.
func skewJoinLoad(p *Plan) float64 {
	total := float64(p.Stats.TotalTuples())
	load := total / float64(p.P)
	for _, vc := range p.Heavy {
		blockSize := float64(vc.Count) * float64(p.P) / total
		if blockSize < 1 {
			blockSize = 1
		}
		if blockSize > float64(p.P) {
			blockSize = float64(p.P)
		}
		// Split side ≈ the heavy count spread over the block; broadcast
		// side ≤ the smaller side's frequency, bounded by the threshold
		// scale. Using the combined count is conservative.
		if l := float64(vc.Count) / blockSize; l > load {
			load = l
		}
	}
	return load
}

// MatchingStats synthesizes the statistics of a matching database over
// [n] for q: every relation has n tuples and every column is a
// permutation (max frequency 1). It is what cmd/mpcplan uses when no
// data is supplied.
func MatchingStats(q *query.Query, n int) *relation.Stats {
	s := &relation.Stats{Relations: make(map[string]*relation.RelationStats, q.NumAtoms())}
	for _, a := range q.Atoms {
		rs := &relation.RelationStats{
			Name:  a.Name,
			Count: n,
			Attrs: append([]string(nil), a.Vars...),
			Cols:  make([]*relation.ColumnStats, a.Arity()),
		}
		for i := range rs.Cols {
			rs.Cols[i] = &relation.ColumnStats{Distinct: n, MaxFreq: 1}
		}
		s.Relations[a.Name] = rs
	}
	return s
}
