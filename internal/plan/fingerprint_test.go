package plan

import (
	"math/big"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestFingerprintStability(t *testing.T) {
	q := query.Triangle()
	k1 := CacheKey{Query: q, Dataset: "d", Opts: Options{P: 64}}
	k2 := CacheKey{Query: q, Dataset: "d", Opts: Options{P: 64}}
	if k1.Fingerprint() != k2.Fingerprint() {
		t.Fatalf("equal keys fingerprint differently: %s vs %s", k1.Fingerprint(), k2.Fingerprint())
	}
	variants := []CacheKey{
		{Query: q, Dataset: "other", Opts: Options{P: 64}},
		{Query: q, Dataset: "d", Opts: Options{P: 32}},
		{Query: q, Dataset: "d", Opts: Options{P: 64, Epsilon: big.NewRat(1, 2)}},
		{Query: q, Dataset: "d", Opts: Options{P: 64, CapFactor: 4}},
		{Query: query.Chain(3), Dataset: "d", Opts: Options{P: 64}},
	}
	for _, v := range variants {
		if v.Fingerprint() == k1.Fingerprint() {
			t.Errorf("distinct key %q collides with %q", v, k1)
		}
	}
}

func TestPlanFingerprintMatchesRebuild(t *testing.T) {
	q := query.Triangle()
	stats := MatchingStats(q, 1000)
	p1, err := Build(q, stats, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(q, stats, Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatalf("identical builds fingerprint differently")
	}
	p3, err := Build(q, stats, Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Fingerprint() == p1.Fingerprint() {
		t.Fatalf("p=16 plan collides with p=64 plan")
	}
}

// TestConcurrentExecuteSharedPlan is the concurrency contract of the
// Plan type: one compiled plan executed from many goroutines over one
// shared database must race-free produce the ground truth every time
// (run under -race in CI).
func TestConcurrentExecuteSharedPlan(t *testing.T) {
	q := query.Triangle()
	rng := rand.New(rand.NewPCG(7, 0))
	db := relation.MatchingDatabase(rng, q, 300)
	pl, err := Build(q, relation.CollectStats(db), Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	counts := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := pl.Execute(db, ExecOptions{Seed: uint64(g + 1)})
			if err != nil {
				errs[g] = err
				return
			}
			counts[g] = len(res.Answers)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if counts[g] != len(truth) {
			t.Fatalf("goroutine %d: %d answers, want %d", g, counts[g], len(truth))
		}
	}
}
