package plan_test

import (
	"context"
	"math/big"
	"math/rand/v2"
	"net"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

// startAggPool spins up n in-process TCP worker listeners and returns
// their addresses.
func startAggPool(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln)
	}
	return addrs
}

// TestAggregateAcrossEnginesAndTransports is the gather-fold
// differential: every engine × transport combination must produce the
// exact grouped aggregate the single-node reference computes over the
// ground-truth answer set, with byte-identical round statistics
// between loopback and TCP (the fold changes the output, never the
// communication).
func TestAggregateAcrossEnginesAndTransports(t *testing.T) {
	const p = 8
	rng := rand.New(rand.NewPCG(17, 19))

	// Scenario 1: skewed two-atom join — one-round and skew engines.
	r, s := skew.ZipfJoinInput(rng, 1500, 1.3)
	zipfDB := relation.NewDatabase(1500)
	zipfDB.AddRelation(r)
	zipfDB.AddRelation(s)

	// Scenario 2: a 4-chain at ε = 0 — one-round and multiround.
	chain := query.Chain(4)
	chainDB := relation.MatchingDatabase(rand.New(rand.NewPCG(23, 29)), chain, 400)

	scenarios := []struct {
		name    string
		q       *query.Query
		db      *relation.Database
		eps     *big.Rat
		engines []plan.Engine
		spec    relation.GroupSpec
	}{
		{
			name:    "zipf-join",
			q:       skew.JoinQuery(),
			db:      zipfDB,
			engines: []plan.Engine{plan.OneRound, plan.SkewJoin},
			spec: relation.GroupSpec{
				GroupBy: []int{0},
				Aggs: []relation.Aggregate{
					{Func: relation.AggCount, Col: 2},
					{Func: relation.AggMax, Col: 2},
				},
			},
		},
		{
			name:    "chain4-eps0",
			q:       chain,
			db:      chainDB,
			eps:     big.NewRat(0, 1),
			engines: []plan.Engine{plan.OneRound, plan.MultiRound},
			spec: relation.GroupSpec{
				GroupBy: []int{0},
				Aggs:    []relation.Aggregate{{Func: relation.AggCount, Col: chain.NumVars() - 1}},
			},
		},
	}

	addrs := startAggPool(t, p)
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			truth, err := core.GroundTruth(sc.q, sc.db)
			if err != nil {
				t.Fatal(err)
			}
			want := relation.GroupAggregate(truth, sc.spec)
			base, err := plan.Build(sc.q, relation.CollectStats(sc.db), plan.Options{P: p, Epsilon: sc.eps})
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range sc.engines {
				forced, err := base.WithEngine(eng)
				if err != nil {
					t.Fatalf("%v: %v", eng, err)
				}
				pl, err := forced.WithAggregate(sc.spec)
				if err != nil {
					t.Fatal(err)
				}
				loop, err := pl.Execute(sc.db, plan.ExecOptions{Seed: 5})
				if err != nil {
					t.Fatalf("%v loopback: %v", eng, err)
				}
				if !reflect.DeepEqual(loop.Answers, want) {
					t.Fatalf("%v loopback: %d aggregate rows, reference %d", eng, len(loop.Answers), len(want))
				}

				ctx := context.Background()
				tr, err := dist.DialTCP(ctx, addrs)
				if err != nil {
					t.Fatal(err)
				}
				tcp, err := pl.Execute(sc.db, plan.ExecOptions{Seed: 5, Transport: tr, Context: ctx})
				tr.Close()
				if err != nil {
					t.Fatalf("%v tcp: %v", eng, err)
				}
				if !reflect.DeepEqual(tcp.Answers, want) {
					t.Fatalf("%v tcp: %d aggregate rows, reference %d", eng, len(tcp.Answers), len(want))
				}
				if !reflect.DeepEqual(loop.Stats.Rounds, tcp.Stats.Rounds) {
					t.Fatalf("%v: round stats diverge between transports:\nloop %+v\n tcp %+v",
						eng, loop.Stats.Rounds, tcp.Stats.Rounds)
				}
			}
		})
	}
}

// TestWithAggregateValidation: the spec is validated against the
// query's variable count, and OutputVars reflects the fold.
func TestWithAggregateValidation(t *testing.T) {
	q := query.MustParse("R(x,y),S(y,z)")
	pl, err := plan.Build(q, plan.MatchingStats(q, 100), plan.Options{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.WithAggregate(relation.GroupSpec{
		GroupBy: []int{0},
		Aggs:    []relation.Aggregate{{Func: relation.AggCount, Col: 3}},
	}); err == nil {
		t.Fatal("out-of-range aggregate column accepted")
	}
	if _, err := pl.WithAggregate(relation.GroupSpec{GroupBy: []int{0}}); err == nil {
		t.Fatal("spec without aggregates accepted")
	}
	agg, err := pl.WithAggregate(relation.GroupSpec{
		GroupBy: []int{0},
		Aggs:    []relation.Aggregate{{Func: relation.AggSum, Col: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.OutputVars(); !reflect.DeepEqual(got, []string{"x", "sum(z)"}) {
		t.Fatalf("OutputVars = %v", got)
	}
	if got := pl.OutputVars(); !reflect.DeepEqual(got, q.Vars()) {
		t.Fatalf("unaggregated OutputVars = %v", got)
	}
}
