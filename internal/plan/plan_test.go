package plan_test

import (
	"math/big"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/skew"
)

func sameAnswers(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestTriangleExplain is the acceptance check of the PR: the triangle
// query plans onto the LP-derived p^{1/3} grid and the predicted load
// stays within the paper's O(n/p^{2/3}) bound (here with its exact
// constant 3).
func TestTriangleExplain(t *testing.T) {
	q := query.Triangle()
	const n, p = 20000, 64
	pl, err := plan.Build(q, plan.MatchingStats(q, n), plan.Options{P: p})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != plan.OneRound {
		t.Fatalf("engine = %v, want one-round", pl.Engine)
	}
	third := big.NewRat(1, 3)
	for i, v := range q.Vars() {
		if pl.ShareExponents[i].Cmp(third) != 0 {
			t.Errorf("share exponent of %s = %s, want 1/3", v, pl.ShareExponents[i].RatString())
		}
		if d := pl.Shares.DimOf(v); pl.Shares.Dims[d] != 4 {
			t.Errorf("share of %s = %d, want p^{1/3} = 4", v, pl.Shares.Dims[d])
		}
	}
	// Paper bound 3·n/p^{2/3} = 3·20000/16 = 3750; the integer grid
	// 4×4×4 hits it exactly.
	bound := 3 * float64(n) / 16
	if pl.BoundLoad != bound {
		t.Errorf("BoundLoad = %v, want %v", pl.BoundLoad, bound)
	}
	if pl.OneRoundCost.LoadTuples > bound*1.001 {
		t.Errorf("predicted load %v exceeds the paper bound %v", pl.OneRoundCost.LoadTuples, bound)
	}
	ex := pl.Explain()
	for _, want := range []string{
		"τ* = 3/2",
		"x1=1/3",
		"x1:4",
		"grid 64",
		"p^{1/3} per hashed dimension",
		"engine: one-round hypercube",
	} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
}

// TestChainAtEpsilonZeroPicksMultiround: at ε = 0 the one-round load
// of L4 (n/√p per relation) blows the c·N/p budget, and the planner
// must fall back to the Γ^r_0 decomposition.
func TestChainAtEpsilonZeroPicksMultiround(t *testing.T) {
	q := query.Chain(4)
	pl, err := plan.Build(q, plan.MatchingStats(q, 10000), plan.Options{
		P:       16,
		Epsilon: big.NewRat(0, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != plan.MultiRound {
		t.Fatalf("engine = %v, want multiround\n%s", pl.Engine, pl.Explain())
	}
	if pl.Multi == nil || pl.MultiCost == nil {
		t.Fatal("multiround plan/cost not populated")
	}
	if pl.MultiCost.LoadTuples >= pl.OneRoundCost.LoadTuples {
		t.Errorf("multiround load %v not below one-round %v",
			pl.MultiCost.LoadTuples, pl.OneRoundCost.LoadTuples)
	}
	if !strings.Contains(pl.Explain(), "engine: multiround") {
		t.Errorf("Explain disagrees with engine:\n%s", pl.Explain())
	}
}

// TestZipfJoinPicksSkewEngine: heavy hitters in the statistics must
// flip the equi-join onto the resilient routing discipline, and the
// executed answers must match ground truth exactly.
func TestZipfJoinPicksSkewEngine(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	r, s := skew.ZipfJoinInput(rng, 2000, 1.3)
	q := skew.JoinQuery()
	db := relation.NewDatabase(2000)
	db.AddRelation(r)
	db.AddRelation(s)
	stats := relation.CollectStats(db)
	pl, err := plan.Build(q, stats, plan.Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != plan.SkewJoin {
		t.Fatalf("engine = %v, want skew-aware\n%s", pl.Engine, pl.Explain())
	}
	if len(pl.Heavy) == 0 || pl.Heavy[0].Count <= pl.HeavyThreshold {
		t.Fatalf("heavy hitters not detected: %v (threshold %d)", pl.Heavy, pl.HeavyThreshold)
	}
	res, err := pl.Execute(db, plan.ExecOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(res.Answers, truth) {
		t.Fatalf("skew-engine answers (%d) disagree with ground truth (%d)",
			len(res.Answers), len(truth))
	}
}

// TestMatchingJoinStaysOneRound: the same join without skew must keep
// the plain one-round engine (no false skew positives on matchings).
func TestMatchingJoinStaysOneRound(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	r, s := skew.MatchingJoinInput(rng, 1000)
	q := skew.JoinQuery()
	db := relation.NewDatabase(1000)
	db.AddRelation(r)
	db.AddRelation(s)
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != plan.OneRound {
		t.Fatalf("engine = %v, want one-round\n%s", pl.Engine, pl.Explain())
	}
	if len(pl.Heavy) != 0 {
		t.Errorf("spurious heavy hitters on a matching: %v", pl.Heavy)
	}
}

// TestTinyUniformJoinNotSkew is the degenerate-input regression: on an
// input smaller than p, every join value trivially exceeds a naive
// (Σ|S_j|)/p threshold, but a matching carries no skew — the planner
// must keep the one-round engine (threshold clamps to ≥ 1 and the
// skew fallback additionally requires the skew load to break the
// budget).
func TestTinyUniformJoinNotSkew(t *testing.T) {
	q := skew.JoinQuery()
	rng := rand.New(rand.NewPCG(2, 2))
	r, s := skew.MatchingJoinInput(rng, 7)
	db := relation.NewDatabase(7)
	db.AddRelation(r)
	db.AddRelation(s)
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pl.HeavyThreshold < 1 {
		t.Errorf("threshold = %d, must clamp to >= 1", pl.HeavyThreshold)
	}
	if pl.Engine == plan.SkewJoin {
		t.Fatalf("tiny matching misclassified as skewed:\n%s", pl.Explain())
	}
}

// TestManualSharesDropExponentLabel: a -plan share override no longer
// matches the LP exponents, so Explain must not annotate the grid with
// a p^{e} label.
func TestManualSharesDropExponentLabel(t *testing.T) {
	q := query.Triangle()
	pl, err := plan.Build(q, plan.MatchingStats(q, 1000), plan.Options{P: 64})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := pl.WithShares(&hypercube.Shares{
		Vars: []string{"x1", "x2", "x3"}, Dims: []int{64, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex := forced.Explain(); strings.Contains(ex, "per hashed dimension") {
		t.Errorf("manual shares must not carry the LP exponent label:\n%s", ex)
	}
}

// TestPlannerMatchesGroundTruthOnFamilies is the planner's end-to-end
// property test over the paper's query families on matching databases:
// whatever engine the planner picks, the answers must be
// GroundTruth-identical.
func TestPlannerMatchesGroundTruthOnFamilies(t *testing.T) {
	cases := []struct {
		q   *query.Query
		eps *big.Rat // nil = query's own exponent
	}{
		{query.Chain(3), nil},
		{query.Chain(4), big.NewRat(0, 1)}, // forces multiround
		{query.Cycle(3), nil},
		{query.Cycle(4), nil},
		{query.Star(3), nil},
		{query.SpokedWheel(2), big.NewRat(1, 2)},
		{query.CartesianPair(), nil}, // disconnected: one-round only
	}
	for _, c := range cases {
		name := c.q.Name
		if c.eps != nil {
			name += "@eps=" + c.eps.RatString()
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(42, uint64(len(name))))
			db := relation.MatchingDatabase(rng, c.q, 300)
			stats := relation.CollectStats(db)
			pl, err := plan.Build(c.q, stats, plan.Options{P: 16, Epsilon: c.eps})
			if err != nil {
				t.Fatal(err)
			}
			res, err := pl.Execute(db, plan.ExecOptions{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			truth, err := core.GroundTruth(c.q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswers(res.Answers, truth) {
				t.Fatalf("%s via %v: %d answers, ground truth %d",
					c.q.Name, pl.Engine, len(res.Answers), len(truth))
			}
			if res.Engine != pl.Engine {
				t.Errorf("executed engine %v != planned %v", res.Engine, pl.Engine)
			}
		})
	}
}

// TestPlannerMatchesGroundTruthOnZipf runs the planner over skewed
// inputs for the join family and checks GroundTruth equivalence across
// several skew strengths (crossing the heavy-hitter threshold).
func TestPlannerMatchesGroundTruthOnZipf(t *testing.T) {
	q := skew.JoinQuery()
	for _, s := range []float64{0, 0.8, 1.4} {
		rng := rand.New(rand.NewPCG(17, uint64(s*10)))
		r, sr := skew.ZipfJoinInput(rng, 1500, s)
		db := relation.NewDatabase(1500)
		db.AddRelation(r)
		db.AddRelation(sr)
		pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := pl.Execute(db, plan.ExecOptions{Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		truth, err := core.GroundTruth(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(res.Answers, truth) {
			t.Fatalf("zipf s=%v via %v: %d answers, ground truth %d",
				s, pl.Engine, len(res.Answers), len(truth))
		}
	}
}

// TestPlannerEquivalenceVsHandPickedShares compares the planner's
// one-round execution against hypercube.Run with the historic
// hand-picked vertex-cover shares on the paper's families: identical
// grids, identical answers.
func TestPlannerEquivalenceVsHandPickedShares(t *testing.T) {
	for _, q := range []*query.Query{
		query.Triangle(), query.Chain(3), query.Star(3),
	} {
		t.Run(q.Name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(1, 2))
			db := relation.MatchingDatabase(rng, q, 400)
			const p = 27
			pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: p})
			if err != nil {
				t.Fatal(err)
			}
			hand, err := hypercube.SharesForQuery(q, p, hypercube.GreedyRounding)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range q.Vars() {
				if pl.Shares.Dims[pl.Shares.DimOf(v)] != hand.Dims[hand.DimOf(v)] {
					t.Errorf("share %d of %s: planner %v vs hand %v", i, v, pl.Shares, hand)
				}
			}
			res, err := pl.Execute(db, plan.ExecOptions{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := hypercube.RunWithShares(q, db, p, hand, hypercube.Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !sameAnswers(res.Answers, ref.Answers) {
				t.Fatalf("planner answers %d != hand-share answers %d", len(res.Answers), len(ref.Answers))
			}
		})
	}
}

// TestSizeAwareShares: when cardinalities differ the planner switches
// to size-aware enumeration. On a skewed-size equi-join the optimum
// puts the whole budget on the shared variable (no replication at
// all); on a cartesian product, where replication is unavoidable, the
// smaller relation absorbs it (Afrati–Ullman).
func TestSizeAwareShares(t *testing.T) {
	join := skew.JoinQuery()
	stats := &relation.Stats{Relations: map[string]*relation.RelationStats{
		"R": statsFor("R", []string{"x", "y"}, 10000),
		"S": statsFor("S", []string{"y", "z"}, 100),
	}}
	pl, err := plan.Build(join, stats, plan.Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !pl.SizeAware {
		t.Fatal("expected size-aware share enumeration")
	}
	if dy := pl.Shares.Dims[pl.Shares.DimOf("y")]; dy != 16 {
		t.Errorf("shares %v: the equi-join optimum is all budget on y", pl.Shares)
	}
	if !strings.Contains(pl.Explain(), "size-aware enumeration") {
		t.Errorf("Explain must name the share source:\n%s", pl.Explain())
	}

	cp := query.CartesianPair()
	cpStats := &relation.Stats{Relations: map[string]*relation.RelationStats{
		"R": statsFor("R", []string{"x"}, 10000),
		"S": statsFor("S", []string{"y"}, 100),
	}}
	cpl, err := plan.Build(cp, cpStats, plan.Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !cpl.SizeAware {
		t.Fatal("expected size-aware share enumeration for the product")
	}
	dx := cpl.Shares.Dims[cpl.Shares.DimOf("x")]
	dy := cpl.Shares.Dims[cpl.Shares.DimOf("y")]
	if dx <= dy {
		t.Errorf("shares %v: want share(x) > share(y) so the small S is the replicated side", cpl.Shares)
	}
}

func statsFor(name string, attrs []string, n int) *relation.RelationStats {
	rs := &relation.RelationStats{Name: name, Count: n, Attrs: attrs,
		Cols: make([]*relation.ColumnStats, len(attrs))}
	for i := range rs.Cols {
		rs.Cols[i] = &relation.ColumnStats{Distinct: n, MaxFreq: 1}
	}
	return rs
}

// TestManualOverrides exercises the -plan escape hatch: forced shares
// and forced engines still produce ground-truth answers, and
// impossible overrides error.
func TestManualOverrides(t *testing.T) {
	q := query.Triangle()
	rng := rand.New(rand.NewPCG(8, 8))
	db := relation.MatchingDatabase(rng, q, 200)
	pl, err := plan.Build(q, relation.CollectStats(db), plan.Options{P: 27})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}

	manual := &hypercube.Shares{Vars: []string{"x1", "x2", "x3"}, Dims: []int{27, 1, 1}}
	forced, err := pl.WithShares(manual)
	if err != nil {
		t.Fatal(err)
	}
	res, err := forced.Execute(db, plan.ExecOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(res.Answers, truth) {
		t.Fatalf("forced-share answers %d != truth %d", len(res.Answers), len(truth))
	}

	if _, err := pl.WithShares(&hypercube.Shares{Vars: []string{"x1"}, Dims: []int{28}}); err == nil {
		t.Error("grid larger than p must be rejected")
	}
	if _, err := pl.WithShares(&hypercube.Shares{Vars: []string{"x1", "x2"}, Dims: []int{3, 3}}); err == nil {
		t.Error("shares missing a variable must be rejected")
	}

	me, err := pl.WithEngine(plan.MultiRound)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := me.Execute(db, plan.ExecOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(mres.Answers, truth) {
		t.Fatalf("forced-multiround answers %d != truth %d", len(mres.Answers), len(truth))
	}
	if _, err := pl.WithEngine(plan.SkewJoin); err == nil {
		t.Error("skew engine on a triangle must be rejected")
	}
}

// TestBuildErrors covers the planner's input validation.
func TestBuildErrors(t *testing.T) {
	q := query.Triangle()
	st := plan.MatchingStats(q, 100)
	if _, err := plan.Build(q, st, plan.Options{P: 0}); err == nil {
		t.Error("p = 0 must error")
	}
	if _, err := plan.Build(q, nil, plan.Options{P: 4}); err == nil {
		t.Error("nil stats must error")
	}
	if _, err := plan.Build(q, plan.MatchingStats(query.Chain(2), 100), plan.Options{P: 4}); err == nil {
		t.Error("missing relation stats must error")
	}
	if _, err := plan.Build(q, st, plan.Options{P: 4, Epsilon: big.NewRat(3, 2)}); err == nil {
		t.Error("ε ≥ 1 must error")
	}
}
