package knowledge

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cover"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/theory"
)

func TestMatchingBits(t *testing.T) {
	// Binary matching over [4]: log2(4!) = log2(24) ≈ 4.585 bits.
	got, err := MatchingBits(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log2(24)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MatchingBits(4,2) = %v, want %v", got, want)
	}
	// Ternary: twice that.
	got3, err := MatchingBits(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got3-2*want) > 1e-9 {
		t.Errorf("MatchingBits(4,3) = %v, want %v", got3, 2*want)
	}
	// Unary matchings are free (there is only one).
	got1, err := MatchingBits(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != 0 {
		t.Errorf("MatchingBits(10,1) = %v, want 0", got1)
	}
	if _, err := MatchingBits(0, 2); err == nil {
		t.Error("want error for n=0")
	}
}

func TestPrefixKnowledgeBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 64
	rel := relation.Matching(rng, "S", []string{"x", "y"}, n)
	total, err := MatchingBits(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Full budget: everything known.
	known, used, err := PrefixKnowledge(rel, n, total+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(known) != n {
		t.Errorf("full budget knows %d tuples, want %d", len(known), n)
	}
	if used > total+1e-6 {
		t.Errorf("used %v exceeds total %v", used, total)
	}
	// Zero budget: nothing.
	known, _, err = PrefixKnowledge(rel, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(known) != 0 {
		t.Errorf("zero budget knows %d tuples", len(known))
	}
	// Non-matching input rejected.
	bad := relation.New("B", "x", "y")
	bad.MustAdd(relation.Tuple{1, 1})
	if _, _, err := PrefixKnowledge(bad, n, 10); err == nil {
		t.Error("want error for non-matching")
	}
}

// TestLemma36Property: a fraction-f message yields at most ≈ f·n known
// tuples. The prefix scheme's per-tuple cost decreases with i (later
// tuples are cheaper), so the count can slightly exceed f·n; Lemma 3.6
// is an expectation bound with the slack absorbed by entropy — we
// check the count never exceeds f·n by more than the cheap tail.
func TestLemma36Property(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		n := 16 + rng.IntN(100)
		arity := 2 + rng.IntN(2)
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		rel := relation.Matching(rng, "S", attrs, n)
		frac := rng.Float64()
		known, err := FractionKnowledge(rel, n, frac)
		if err != nil {
			return false
		}
		// Count bound: the first m tuples cost at least
		// (a−1)·m·log2(n−m+1) bits, so m·log2(n−m+1) ≤ f·log2(n!)
		// — validate the direct implication |known| within the budget.
		if frac == 1 && len(known) != n {
			return false
		}
		// Loose sanity: knowing more than f·n + n/log2(n) tuples would
		// contradict the entropy argument.
		slack := float64(n)/math.Log2(float64(n)+2) + 2
		return float64(len(known)) <= frac*float64(n)+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestKnownAnswersChain: knowing fractions f1, f2 of two composed
// permutations yields about f1·f2·n known answers of L2, matching the
// AnswerBound with the tight packing (1,1)… wait — the packing of L2
// has τ* = 1 (u = (1,0) or (0,1)); the bound Π f^{u_j}·n = f1·n is
// looser than the true f1·f2·n. Both directions are asserted.
func TestKnownAnswersChain(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 200
	q := query.Chain(2)
	db := relation.MatchingDatabase(rng, q, n)
	s1, _ := db.Relation("S1")
	s2, _ := db.Relation("S2")
	k1, err := FractionKnowledge(s1, n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := FractionKnowledge(s2, n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := KnownAnswers(q, map[string][]relation.Tuple{
		"S1": k1, "S2": k2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected ≈ 0.25·n by independence of the two prefixes.
	got := float64(len(answers))
	if got < 0.1*float64(n) || got > 0.45*float64(n) {
		t.Errorf("known answers = %v, want ≈ 0.25·n = %v", got, 0.25*float64(n))
	}
	// The Lemma 3.7 ceiling with packing (1,0): f1^1·n = 0.5n ≥ got.
	bound, err := AnswerBound(q, []float64{0.5, 0.5}, []float64{1, 0}, float64(n))
	if err != nil {
		t.Fatal(err)
	}
	if got > bound {
		t.Errorf("known answers %v exceed Lemma 3.7 bound %v", got, bound)
	}
}

// TestKnowledgeCeilingAcrossFractions sweeps f for C3 and checks the
// measured known-answer count never exceeds the Friedgut/packing
// ceiling Π f^{u_j}·E[|q|] with the tight packing (1/2,1/2,1/2),
// aggregated over many instances.
func TestKnowledgeCeilingAcrossFractions(t *testing.T) {
	q := query.Triangle()
	r := cover.MustSolve(q)
	packing := make([]float64, q.NumAtoms())
	for j, u := range r.EdgePacking {
		packing[j], _ = u.Float64()
	}
	n := 60
	trials := 150
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		rng := rand.New(rand.NewPCG(uint64(frac*100), 3))
		totalKnown := 0.0
		for trial := 0; trial < trials; trial++ {
			db := relation.MatchingDatabase(rng, q, n)
			known := map[string][]relation.Tuple{}
			for _, a := range q.Atoms {
				rel, _ := db.Relation(a.Name)
				k, err := FractionKnowledge(rel, n, frac)
				if err != nil {
					t.Fatal(err)
				}
				known[a.Name] = k
			}
			ans, err := KnownAnswers(q, known)
			if err != nil {
				t.Fatal(err)
			}
			totalKnown += float64(len(ans))
		}
		mean := totalKnown / float64(trials)
		expected, err := theory.ExpectedAnswers(q, n)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := AnswerBound(q, []float64{frac, frac, frac}, packing, expected)
		if err != nil {
			t.Fatal(err)
		}
		// Allow sampling slack: the ceiling is an expectation bound.
		if mean > bound*1.6+0.1 {
			t.Errorf("f=%v: mean known answers %v exceed ceiling %v", frac, mean, bound)
		}
	}
}

func TestAnswerBoundValidation(t *testing.T) {
	q := query.Chain(2)
	if _, err := AnswerBound(q, []float64{0.5}, []float64{1, 0}, 10); err == nil {
		t.Error("want error for wrong fraction count")
	}
	if _, err := AnswerBound(q, []float64{2, 0.5}, []float64{1, 0}, 10); err == nil {
		t.Error("want error for fraction > 1")
	}
	if _, err := AnswerBound(q, []float64{0.5, 0.5}, []float64{-1, 0}, 10); err == nil {
		t.Error("want error for negative packing")
	}
	got, err := AnswerBound(q, []float64{0, 0.5}, []float64{1, 0}, 10)
	if err != nil || got != 0 {
		t.Errorf("zero fraction with positive packing should zero the bound, got %v, %v", got, err)
	}
}

func TestFractionKnowledgeValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	rel := relation.Matching(rng, "S", []string{"x", "y"}, 8)
	if _, err := FractionKnowledge(rel, 8, -0.1); err == nil {
		t.Error("want error for negative fraction")
	}
	if _, err := FractionKnowledge(rel, 8, 1.1); err == nil {
		t.Error("want error for fraction > 1")
	}
}
