// Package knowledge simulates the information-theoretic core of the
// paper's one-round lower bound (Section 3.2): how many tuples of a
// matching a server can *know* after receiving a bounded number of
// bits, and how little of the query output that knowledge pins down.
//
// Lemma 3.6: encoding an a-dimensional matching over [n] takes
// (a−1)·log2(n!) bits; a message of f·(a−1)·log2(n!) bits lets the
// receiver know at most f·n tuples in expectation. The package models
// the extreme (and optimal, for prefix codes) messaging scheme that
// simply transmits tuples one by one — the i-th tuple of a matching
// costs (a−1)·log2(n−i) bits because each remaining column has n−i
// candidate values — and exposes the resulting knowledge sets.
//
// Lemma 3.7 / Theorem 3.3 then bound the *answers* derivable from
// per-relation knowledge: with a tight fractional edge packing u,
// E[known answers] ≤ Π_j f_j^{u_j} · E[|q(I)|]. KnownAnswers measures
// the left side directly by joining the knowledge sets.
package knowledge

import (
	"fmt"
	"math"

	"repro/internal/localjoin"
	"repro/internal/query"
	"repro/internal/relation"
)

// MatchingBits returns (arity−1)·log2(n!), the exact encoding size of
// an a-dimensional matching over [n] in bits (Section 3.2.1).
func MatchingBits(n, arity int) (float64, error) {
	if n < 1 || arity < 1 {
		return 0, fmt.Errorf("knowledge: n = %d, arity = %d", n, arity)
	}
	return float64(arity-1) * logFactorial(n), nil
}

// logFactorial returns log2(n!) via direct summation (exact enough for
// the n used in experiments; Stirling is avoided to keep error tiny).
func logFactorial(n int) float64 {
	s := 0.0
	for i := 2; i <= n; i++ {
		s += math.Log2(float64(i))
	}
	return s
}

// PrefixKnowledge returns the tuples of the matching rel a server
// knows after receiving at most budgetBits bits under the sequential
// prefix encoding: tuple i costs (arity−1)·log2(n−i) bits. The second
// return value is the number of bits actually consumed.
func PrefixKnowledge(rel *relation.Relation, n int, budgetBits float64) ([]relation.Tuple, float64, error) {
	if !rel.IsMatching(n) {
		return nil, 0, fmt.Errorf("knowledge: relation %s is not a matching over [%d]", rel.Name, n)
	}
	arity := rel.Arity()
	used := 0.0
	// Tolerance absorbs summation-order float error so a budget of
	// exactly the full encoding admits every tuple.
	slack := 1e-9 * (budgetBits + 1)
	var known []relation.Tuple
	for i, t := range rel.Tuples {
		cost := float64(arity-1) * math.Log2(float64(n-i))
		if n-i <= 1 {
			cost = 0 // the last tuple is forced
		}
		if used+cost > budgetBits+slack {
			break
		}
		used += cost
		known = append(known, t)
	}
	return known, used, nil
}

// FractionKnowledge is PrefixKnowledge with the budget given as a
// fraction f of the matching's full encoding size. By Lemma 3.6 the
// returned tuple count is ≤ f·n + O(1) (the prefix scheme is the
// equality case up to the non-uniform per-tuple costs).
func FractionKnowledge(rel *relation.Relation, n int, f float64) ([]relation.Tuple, error) {
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("knowledge: fraction %v outside [0,1]", f)
	}
	total, err := MatchingBits(n, rel.Arity())
	if err != nil {
		return nil, err
	}
	known, _, err := PrefixKnowledge(rel, n, f*total)
	return known, err
}

// KnownAnswers joins per-relation knowledge sets: the query answers a
// server can output knowing only those tuples (the set K_m(q) of
// Section 3.2).
func KnownAnswers(q *query.Query, known map[string][]relation.Tuple) ([]relation.Tuple, error) {
	b := localjoin.Bindings{}
	for _, a := range q.Atoms {
		b[a.Name] = known[a.Name]
	}
	return localjoin.Evaluate(q, b, localjoin.HashJoin)
}

// AnswerBound returns the Lemma 3.7-style ceiling
// Π_j f_j^{u_j} · expectedAnswers for a fractional edge packing u
// (floats) and per-relation knowledge fractions f_j, both indexed like
// q.Atoms.
func AnswerBound(q *query.Query, fractions, packing []float64, expectedAnswers float64) (float64, error) {
	if len(fractions) != q.NumAtoms() || len(packing) != q.NumAtoms() {
		return 0, fmt.Errorf("knowledge: need %d fractions and packing values", q.NumAtoms())
	}
	prod := expectedAnswers
	for j := range fractions {
		f, u := fractions[j], packing[j]
		if f < 0 || f > 1 || u < 0 {
			return 0, fmt.Errorf("knowledge: invalid fraction %v or packing %v", f, u)
		}
		if u == 0 {
			continue
		}
		if f == 0 {
			return 0, nil
		}
		prod *= math.Pow(f, u)
	}
	return prod, nil
}
