package mpc

import (
	"errors"
	"testing"

	"repro/internal/exchange"
	"repro/internal/relation"
)

func newTestCluster(t *testing.T, p int, eps float64, inputBits int64, capC float64) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		Workers:     p,
		Epsilon:     eps,
		InputBits:   inputBits,
		CapConstant: capC,
		DomainN:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0, DomainN: 1},
		{Workers: 1, Epsilon: -0.1, DomainN: 1},
		{Workers: 1, Epsilon: 1.5, DomainN: 1},
		{Workers: 1, DomainN: 0},
	}
	for i, cfg := range bad {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("config %d: want error", i)
		}
	}
}

func TestReceiveCap(t *testing.T) {
	cfg := Config{Workers: 16, Epsilon: 0, InputBits: 1 << 20, CapConstant: 1, DomainN: 10}
	// c·N/p^{1-0} = 2^20/16 = 65536.
	if got := cfg.ReceiveCap(); got != 65536 {
		t.Errorf("ReceiveCap = %d, want 65536", got)
	}
	cfg.Epsilon = 1
	// p^{1-1} = 1: the whole input.
	if got := cfg.ReceiveCap(); got != 1<<20 {
		t.Errorf("ReceiveCap(ε=1) = %d, want %d", got, 1<<20)
	}
	cfg.CapConstant = 0
	if got := cfg.ReceiveCap(); got != 0 {
		t.Errorf("disabled cap = %d, want 0", got)
	}
}

func TestRunRoundDelivery(t *testing.T) {
	c := newTestCluster(t, 4, 0, 1<<20, 0)
	// Every worker sends its id to worker (id+1) mod 4.
	err := c.RunRound(func(round int, w *Worker, out *exchange.Outbox) {
		out.Send((w.ID+1)%4, "R", relation.Tuple{w.ID + 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got := c.Worker(i).Received("R")
		if len(got) != 1 {
			t.Fatalf("worker %d: %v", i, got)
		}
		want := (i+3)%4 + 1
		if got[0][0] != want {
			t.Errorf("worker %d received %d, want %d", i, got[0][0], want)
		}
	}
	if c.Round() != 1 || c.Stats().NumRounds() != 1 {
		t.Errorf("rounds = %d / %d", c.Round(), c.Stats().NumRounds())
	}
}

func TestRunRoundStats(t *testing.T) {
	c := newTestCluster(t, 2, 0, 1<<20, 0)
	err := c.RunRound(func(round int, w *Worker, out *exchange.Outbox) {
		if w.ID != 0 {
			return
		}
		out.Send(1, "R", relation.Tuple{1, 2})
		out.Send(1, "R", relation.Tuple{3, 4})
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := c.Stats().Rounds[0]
	// DomainN=100 → 7 bits per value, arity 2, 2 tuples → 28 bits.
	if rs.TotalBits != 28 || rs.MaxReceivedBits != 28 || rs.TotalTuples != 2 || rs.MaxReceivedTuples != 2 {
		t.Errorf("stats = %+v", rs)
	}
	if c.Stats().TotalBits() != 28 || c.Stats().MaxLoadBits() != 28 || c.Stats().MaxLoadTuples() != 2 {
		t.Error("aggregate stats mismatch")
	}
	if got := c.Stats().Replication(28); got != 1.0 {
		t.Errorf("replication = %v", got)
	}
	if got := c.Stats().Replication(0); got != 0 {
		t.Errorf("replication with zero input = %v", got)
	}
}

func TestCapEnforcement(t *testing.T) {
	// Budget: 1·64/4 = 16 bits; sending 3 tuples of 14 bits = 42 > 16.
	c := newTestCluster(t, 4, 0, 64, 1)
	err := c.RunRound(func(round int, w *Worker, out *exchange.Outbox) {
		if w.ID != 0 {
			return
		}
		for _, t := range []relation.Tuple{{1, 1}, {2, 2}, {3, 3}} {
			out.Send(1, "R", t)
		}
	})
	if !errors.Is(err, ErrCapExceeded) {
		t.Fatalf("err = %v, want ErrCapExceeded", err)
	}
	// Data still delivered (stats recorded) so experiments can report.
	if len(c.Worker(1).Received("R")) != 3 {
		t.Error("tuples should be delivered even when cap trips")
	}
}

func TestRunRoundBadDestination(t *testing.T) {
	c := newTestCluster(t, 2, 0, 1<<20, 0)
	err := c.RunRound(func(round int, w *Worker, out *exchange.Outbox) {
		out.Send(99, "R", relation.Tuple{1})
	})
	if err == nil {
		t.Fatal("want error for out-of-range destination")
	}
}

func TestScatterRoutesByFunction(t *testing.T) {
	c := newTestCluster(t, 4, 0, 1<<20, 0)
	r := relation.New("S", "x")
	for i := 1; i <= 8; i++ {
		r.MustAdd(relation.Tuple{i})
	}
	if err := c.Scatter(r, func(t relation.Tuple) []int {
		return []int{t[0] % 4}
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		got := c.Worker(w).Received("S")
		if len(got) != 2 {
			t.Errorf("worker %d holds %d tuples, want 2", w, len(got))
		}
		for _, tp := range got {
			if tp[0]%4 != w {
				t.Errorf("worker %d received %v", w, tp)
			}
		}
	}
}

func TestScatterBadDestination(t *testing.T) {
	c := newTestCluster(t, 2, 0, 1<<20, 0)
	r := relation.New("S", "x")
	r.MustAdd(relation.Tuple{1})
	if err := c.Scatter(r, func(relation.Tuple) []int { return []int{5} }); err == nil {
		t.Fatal("want error")
	}
}

func TestBroadcast(t *testing.T) {
	c := newTestCluster(t, 3, 1, 1<<20, 1)
	r := relation.New("T", "x")
	r.MustAdd(relation.Tuple{42})
	if err := c.Broadcast(r); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if got := c.Worker(w).Received("T"); len(got) != 1 || got[0][0] != 42 {
			t.Errorf("worker %d: %v", w, got)
		}
	}
}

func TestBeginEndRoundGroupsScatters(t *testing.T) {
	c := newTestCluster(t, 2, 0, 1<<20, 0)
	r1 := relation.New("A", "x")
	r1.MustAdd(relation.Tuple{1})
	r2 := relation.New("B", "x")
	r2.MustAdd(relation.Tuple{2})
	c.BeginRound()
	if err := c.Scatter(r1, func(relation.Tuple) []int { return []int{0} }); err != nil {
		t.Fatal(err)
	}
	if err := c.Scatter(r2, func(relation.Tuple) []int { return []int{0} }); err != nil {
		t.Fatal(err)
	}
	if err := c.EndRound(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().NumRounds() != 1 {
		t.Errorf("rounds = %d, want 1 (grouped)", c.Stats().NumRounds())
	}
	if c.Stats().Rounds[0].TotalTuples != 2 {
		t.Errorf("round tuples = %d, want 2", c.Stats().Rounds[0].TotalTuples)
	}
}

func TestEndRoundWithoutBegin(t *testing.T) {
	c := newTestCluster(t, 2, 0, 1<<20, 0)
	if err := c.EndRound(); err == nil {
		t.Fatal("want error")
	}
}

func TestBeginEndRoundCapViolation(t *testing.T) {
	// Budget 1·32/2 = 16 bits; two scatters of 7-bit singletons to the
	// same worker are fine (14), three trip it (21).
	c := newTestCluster(t, 2, 0, 32, 1)
	mk := func(name string) *relation.Relation {
		r := relation.New(name, "x")
		r.MustAdd(relation.Tuple{1})
		return r
	}
	c.BeginRound()
	for _, name := range []string{"A", "B", "C"} {
		if err := c.Scatter(mk(name), func(relation.Tuple) []int { return []int{0} }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.EndRound(); !errors.Is(err, ErrCapExceeded) {
		t.Fatalf("err = %v, want ErrCapExceeded", err)
	}
}

func TestWorkerAccessors(t *testing.T) {
	c := newTestCluster(t, 1, 0, 1<<20, 0)
	w := c.Worker(0)
	w.add("R", []relation.Tuple{{1}})
	w.add("A", []relation.Tuple{{2}})
	names := w.Relations()
	if len(names) != 2 || names[0] != "A" || names[1] != "R" {
		t.Errorf("Relations = %v", names)
	}
	snap := w.Store()
	if len(snap) != 2 || len(snap["R"]) != 1 {
		t.Errorf("Store = %v", snap)
	}
	if len(c.Workers()) != 1 {
		t.Error("Workers length")
	}
	if c.Config().Workers != 1 {
		t.Error("Config accessor")
	}
}

func TestGatherAnswers(t *testing.T) {
	c := newTestCluster(t, 3, 0, 1<<20, 0)
	c.Worker(0).add("out", []relation.Tuple{{2, 1}, {1, 1}})
	c.Worker(1).add("out", []relation.Tuple{{1, 1}}) // duplicate
	c.Worker(2).add("out", []relation.Tuple{{3, 3}})
	got := c.GatherAnswers("out")
	if len(got) != 3 {
		t.Fatalf("answers = %v", got)
	}
	if !got[0].Equal(relation.Tuple{1, 1}) || !got[1].Equal(relation.Tuple{2, 1}) || !got[2].Equal(relation.Tuple{3, 3}) {
		t.Errorf("sorted answers = %v", got)
	}
}

func TestTupleBits(t *testing.T) {
	c := newTestCluster(t, 1, 0, 1<<20, 0)
	// DomainN = 100 → 7 bits/value.
	if got := c.TupleBits(3); got != 21 {
		t.Errorf("TupleBits(3) = %d, want 21", got)
	}
}

func TestEmptyRoundCostsNothing(t *testing.T) {
	c := newTestCluster(t, 2, 0, 1<<20, 0)
	err := c.RunRound(func(round int, w *Worker, out *exchange.Outbox) {})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().TotalBits() != 0 {
		t.Error("silent rounds should not cost bits")
	}
	if c.Stats().NumRounds() != 1 {
		t.Error("silent rounds still count as rounds")
	}
}

// TestReceivedViewsIsolated is the regression test for the historic
// slice-aliasing footgun: Received/Store handed out the worker's
// internal slices, so one consumer's mutation could corrupt another's
// view. Under the columnar store every call materializes fresh backing.
func TestReceivedViewsIsolated(t *testing.T) {
	c := newTestCluster(t, 1, 0, 1<<20, 0)
	w := c.Worker(0)
	w.add("R", []relation.Tuple{{1, 2}, {3, 4}})

	first := w.Received("R")
	// Consumer one vandalizes its view: overwrites values, truncates,
	// and appends through the original header.
	first[0][0] = 999
	first[0][1] = 999
	_ = append(first[:1], relation.Tuple{7, 7})

	second := w.Received("R")
	if len(second) != 2 {
		t.Fatalf("second view has %d tuples, want 2", len(second))
	}
	want := []relation.Tuple{{1, 2}, {3, 4}}
	for i, tu := range second {
		if !tu.Equal(want[i]) {
			t.Errorf("second view[%d] = %v, want %v (corrupted by first consumer)", i, tu, want[i])
		}
	}
	// Store snapshots are equally isolated.
	snap := w.Store()
	snap["R"][0][0] = -1
	if got := w.Received("R"); !got[0].Equal(relation.Tuple{1, 2}) {
		t.Errorf("store snapshot mutation leaked into Received: %v", got[0])
	}
	// Incremental views see only the suffix and are fresh too.
	tail := w.ReceivedFrom("R", 1)
	if len(tail) != 1 || !tail[0].Equal(relation.Tuple{3, 4}) {
		t.Errorf("ReceivedFrom(1) = %v", tail)
	}
	tail[0][0] = 42
	if got := w.ReceivedFrom("R", 1); !got[0].Equal(relation.Tuple{3, 4}) {
		t.Errorf("ReceivedFrom views alias: %v", got[0])
	}
	if w.Count("R") != 2 {
		t.Errorf("Count = %d, want 2", w.Count("R"))
	}
}
