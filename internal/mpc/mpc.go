// Package mpc simulates the Massively Parallel Communication model
// MPC(ε) of Beame, Koutris, Suciu (PODS 2013, Section 2.1).
//
// A Cluster holds p workers connected by private channels. Computation
// proceeds in synchronous rounds: every worker runs a step function
// (concurrently, one goroutine per worker — the simulation's analogue
// of independent servers), the produced tuples are routed through the
// columnar exchange layer (internal/exchange), and the engine accounts
// the bits each worker *receives* directly from the sizes of the
// delivered buffers. The model's single resource constraint is enforced
// here: per round a worker may receive at most c·N/p^{1−ε} bits, where
// N is the input size in bits and ε ∈ [0,1] is the space exponent.
//
// The paper's "input servers" (Section 2.4) are modelled by Scatter and
// ScatterPart, which route the tuples of one base relation to workers
// during the first round (partitioning source shards in parallel); they
// perform the same receive accounting. Workers store what they receive
// as sorted columnar runs, so gathering deduplicated answers is a k-way
// merge rather than a concatenate-then-sort.
package mpc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/exchange"
	"repro/internal/relation"
)

// Config parameterizes a cluster.
type Config struct {
	// Workers is p, the number of servers. Must be ≥ 1.
	Workers int
	// Epsilon is the space exponent ε ∈ [0,1].
	Epsilon float64
	// InputBits is N, the input size in bits, used by the receive cap.
	InputBits int64
	// CapConstant is the constant c in the per-round receive cap
	// c·N/p^{1−ε}. Zero or negative disables enforcement (the engine
	// still records loads, so experiments can report them).
	CapConstant float64
	// DomainN is the domain size n; it fixes the bit cost of a tuple
	// value (⌈log2(n+1)⌉ bits).
	DomainN int
}

// validate checks the configuration.
func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("mpc: Workers = %d, need ≥ 1", c.Workers)
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("mpc: Epsilon = %v outside [0,1]", c.Epsilon)
	}
	if c.DomainN < 1 {
		return fmt.Errorf("mpc: DomainN = %d, need ≥ 1", c.DomainN)
	}
	return nil
}

// ReceiveCap returns the per-round per-worker receive budget in bits:
// c·N/p^{1−ε}. Returns 0 when enforcement is disabled.
func (c Config) ReceiveCap() int64 {
	if c.CapConstant <= 0 {
		return 0
	}
	cap := c.CapConstant * float64(c.InputBits) / math.Pow(float64(c.Workers), 1-c.Epsilon)
	return int64(math.Ceil(cap))
}

// ErrCapExceeded reports a worker receiving more bits in a round than
// the MPC(ε) budget allows.
var ErrCapExceeded = errors.New("mpc: receive cap exceeded")

// Worker is one server's local state: the tuples it has received,
// grouped by relation/view name and stored as sorted columnar runs.
// Workers have unlimited compute; all cost accounting happens on
// communication.
type Worker struct {
	// ID is the worker index in [0, p).
	ID int

	mu    sync.Mutex
	store map[string]*exchange.Column
}

func newWorker(id int) *Worker {
	return &Worker{ID: id, store: make(map[string]*exchange.Column)}
}

// Received returns the tuples of the named relation this worker has
// received so far (across all rounds). Each call materializes a fresh,
// stable view from the columnar store: mutating the returned tuples
// cannot corrupt the worker's state or any other caller's view.
func (w *Worker) Received(rel string) []relation.Tuple {
	return w.ReceivedFrom(rel, 0)
}

// ReceivedFrom returns the tuples of rel at positions [start, Count) —
// the incremental read for round-based consumers that track a consumed
// prefix. The view is fresh per call, like Received.
func (w *Worker) ReceivedFrom(rel string, start int) []relation.Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	col := w.store[rel]
	if col == nil {
		return nil
	}
	return col.TuplesFrom(start)
}

// Count returns the number of tuples of rel received so far.
func (w *Worker) Count(rel string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if col := w.store[rel]; col != nil {
		return col.Len()
	}
	return 0
}

// Relations returns the names of all relations the worker holds, in
// sorted order.
func (w *Worker) Relations() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.store))
	for name := range w.store {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Store returns a snapshot map of all held tuples. Like Received, the
// snapshot is materialized fresh: callers may mutate it freely.
func (w *Worker) Store() map[string][]relation.Tuple {
	names := w.Relations()
	out := make(map[string][]relation.Tuple, len(names))
	for _, name := range names {
		out[name] = w.Received(name)
	}
	return out
}

// addRun appends a sealed columnar run to the worker's store. The
// column is created and mutated under w.mu, so deliveries and readers
// may safely interleave.
func (w *Worker) addRun(rel string, run *exchange.Buffer) {
	w.mu.Lock()
	defer w.mu.Unlock()
	col := w.store[rel]
	if col == nil {
		col = &exchange.Column{}
		w.store[rel] = col
	}
	col.Add(run)
}

// add appends loose tuples as one run (test seams and local writes).
func (w *Worker) add(rel string, ts []relation.Tuple) {
	if len(ts) == 0 {
		return
	}
	b := exchange.NewBuffer(len(ts[0]))
	for _, t := range ts {
		b.Append(t)
	}
	b.Seal()
	w.addRun(rel, b)
}

// RoundStats records the communication of one round.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// TotalBits is the sum of bits received by all workers.
	TotalBits int64
	// TotalTuples is the number of tuples received by all workers.
	TotalTuples int64
	// MaxReceivedBits is the largest per-worker received bit count.
	MaxReceivedBits int64
	// MaxReceivedTuples is the largest per-worker received tuple count.
	MaxReceivedTuples int64
	// PerWorkerBits holds bits received by each worker.
	PerWorkerBits []int64
	// PerWorkerTuples holds tuples received by each worker.
	PerWorkerTuples []int64
}

// Account folds one delivered run — tuples tuples costing bits bits,
// received by worker to — into the round's counters. PerWorkerBits and
// PerWorkerTuples must already be sized to the cluster. It is the one
// accounting primitive shared by the in-process simulation and the
// distributed coordinator (internal/dist), so both record identical
// statistics for identical deliveries.
func (rs *RoundStats) Account(to int, tuples, bits int64) {
	rs.PerWorkerBits[to] += bits
	rs.PerWorkerTuples[to] += tuples
	rs.TotalBits += bits
	rs.TotalTuples += tuples
	if rs.PerWorkerBits[to] > rs.MaxReceivedBits {
		rs.MaxReceivedBits = rs.PerWorkerBits[to]
	}
	if rs.PerWorkerTuples[to] > rs.MaxReceivedTuples {
		rs.MaxReceivedTuples = rs.PerWorkerTuples[to]
	}
}

// CheckCap validates the round against a per-worker receive budget in
// bits, returning an ErrCapExceeded-wrapping error naming the first
// offending worker. A budget ≤ 0 disables enforcement.
func (rs *RoundStats) CheckCap(budget int64) error {
	if budget <= 0 {
		return nil
	}
	for w, bits := range rs.PerWorkerBits {
		if bits > budget {
			return fmt.Errorf("%w: worker %d received %d bits in round %d, budget %d",
				ErrCapExceeded, w, bits, rs.Round, budget)
		}
	}
	return nil
}

// Stats aggregates per-round statistics for a run.
type Stats struct {
	Rounds []RoundStats
}

// TotalBits sums received bits over all rounds.
func (s *Stats) TotalBits() int64 {
	var total int64
	for _, r := range s.Rounds {
		total += r.TotalBits
	}
	return total
}

// MaxLoadBits returns the largest per-worker per-round received bits.
func (s *Stats) MaxLoadBits() int64 {
	var m int64
	for _, r := range s.Rounds {
		if r.MaxReceivedBits > m {
			m = r.MaxReceivedBits
		}
	}
	return m
}

// MaxLoadTuples returns the largest per-worker per-round received
// tuple count.
func (s *Stats) MaxLoadTuples() int64 {
	var m int64
	for _, r := range s.Rounds {
		if r.MaxReceivedTuples > m {
			m = r.MaxReceivedTuples
		}
	}
	return m
}

// NumRounds returns the number of communication rounds executed.
func (s *Stats) NumRounds() int { return len(s.Rounds) }

// Replication returns total received bits divided by the input size —
// the observed replication rate (the model predicts O(p^ε) per round).
func (s *Stats) Replication(inputBits int64) float64 {
	if inputBits == 0 {
		return 0
	}
	return float64(s.TotalBits()) / float64(inputBits)
}

// Cluster is a running MPC(ε) simulation.
//
// A Cluster owns all of its mutable state — workers, columnar stores,
// round statistics — and shares nothing with other Clusters, so
// independent simulations may run concurrently (every engine builds a
// fresh Cluster per execution; the serving layer's concurrent query
// executions rely on this isolation). One Cluster's methods are not
// themselves safe for concurrent use: rounds are driven by a single
// caller, while the per-worker concurrency happens inside RunRound
// and ScatterPart.
type Cluster struct {
	cfg     Config
	workers []*Worker
	stats   Stats
	round   int
	open    bool // a BeginRound round is accumulating deliveries
}

// NewCluster builds a cluster of cfg.Workers idle workers.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	c.workers = make([]*Worker, cfg.Workers)
	for i := range c.workers {
		c.workers[i] = newWorker(i)
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Workers returns the worker slice (shared; callers read state only).
func (c *Cluster) Workers() []*Worker { return c.workers }

// Worker returns worker i.
func (c *Cluster) Worker(i int) *Worker { return c.workers[i] }

// Stats returns the accumulated statistics.
func (c *Cluster) Stats() *Stats { return &c.stats }

// Round returns the number of completed rounds.
func (c *Cluster) Round() int { return c.round }

// TupleBits returns the bit cost of one tuple of the given arity:
// arity · ⌈log2(n+1)⌉, the Θ(log n) tuple encoding of Section 4.2.1.
func (c *Cluster) TupleBits(arity int) int64 {
	return int64(arity) * int64(relation.BitsPerValue(c.cfg.DomainN))
}

// StepFunc computes one worker's outgoing tuples for a round, writing
// them into out. It is invoked concurrently for all workers; it must
// only read the worker's own state (the model's servers cannot see each
// other's memory).
type StepFunc func(round int, w *Worker, out *exchange.Outbox)

// RunRound executes one communication round: every worker's step runs
// in its own goroutine with a private outbox, then the collected
// columnar runs are delivered and accounted. If the receive cap is
// enforced and violated, the round still completes (statistics are
// recorded) and ErrCapExceeded is returned.
func (c *Cluster) RunRound(step StepFunc) error {
	c.round++
	outs := make([]*exchange.Outbox, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			outs[i] = exchange.NewOutbox(len(c.workers))
			step(c.round, w, outs[i])
		}(i, w)
	}
	wg.Wait()
	var all []exchange.Delivery
	for _, o := range outs {
		if err := o.Err(); err != nil {
			return fmt.Errorf("mpc: round %d: %w", c.round, err)
		}
		all = append(all, o.Deliveries()...)
	}
	return c.deliver(all)
}

// ScatterPart performs an input-server transmission for one base
// relation through the columnar exchange: part routes every tuple,
// source shards partition in parallel, and the sealed runs are
// delivered. Multiple scatters within the same logical round should be
// grouped with BeginRound/EndRound; a lone scatter accounts its
// delivery as part of the current open round if one exists, otherwise
// as a fresh round.
func (c *Cluster) ScatterPart(rel *relation.Relation, part exchange.Partitioner) error {
	ds, err := exchange.Partition(rel.Name, rel.Tuples, rel.Arity(), len(c.workers), part)
	if err != nil {
		return fmt.Errorf("mpc: scatter: %w", err)
	}
	return c.deliverIntoOpenRound(ds)
}

// Scatter is ScatterPart with a per-tuple destination function —
// route(t) lists the destination workers of each tuple. The routing
// still flows through the columnar exchange.
func (c *Cluster) Scatter(rel *relation.Relation, route func(t relation.Tuple) []int) error {
	return c.ScatterPart(rel, exchange.RouteFunc(route))
}

// Broadcast sends every tuple of rel to all workers (used for tiny
// relations such as the √n-sized unary endpoints in Prop 3.12).
func (c *Cluster) Broadcast(rel *relation.Relation) error {
	return c.ScatterPart(rel, exchange.Broadcast{P: len(c.workers)})
}

// BeginRound opens a new round into which a sequence of Scatter or
// Broadcast calls accumulate — they logically belong to a single
// communication step (e.g. all input servers transmitting in round 1).
func (c *Cluster) BeginRound() {
	c.round++
	c.open = true
	c.stats.Rounds = append(c.stats.Rounds, RoundStats{
		Round:         c.round,
		PerWorkerBits: make([]int64, len(c.workers)),
	})
}

// EndRound closes the round opened by BeginRound and reports a cap
// violation, if any.
func (c *Cluster) EndRound() error {
	if !c.open {
		return errors.New("mpc: EndRound without BeginRound")
	}
	c.open = false
	return c.checkCap(&c.stats.Rounds[len(c.stats.Rounds)-1])
}

// deliver routes runs as a fresh (already counted) round.
func (c *Cluster) deliver(all []exchange.Delivery) error {
	rs := RoundStats{Round: c.round, PerWorkerBits: make([]int64, len(c.workers))}
	if err := c.route(all, &rs); err != nil {
		return err
	}
	c.stats.Rounds = append(c.stats.Rounds, rs)
	return c.checkCap(&c.stats.Rounds[len(c.stats.Rounds)-1])
}

// deliverIntoOpenRound routes runs into the round opened by
// BeginRound, or a fresh self-contained round if none is open.
func (c *Cluster) deliverIntoOpenRound(all []exchange.Delivery) error {
	if c.open {
		return c.route(all, &c.stats.Rounds[len(c.stats.Rounds)-1])
	}
	c.round++
	rs := RoundStats{Round: c.round, PerWorkerBits: make([]int64, len(c.workers))}
	if err := c.route(all, &rs); err != nil {
		return err
	}
	c.stats.Rounds = append(c.stats.Rounds, rs)
	return c.checkCap(&c.stats.Rounds[len(c.stats.Rounds)-1])
}

// route appends sealed runs to destination workers and updates rs
// cumulatively (several deliveries may share one round via BeginRound).
// All accounting derives from buffer sizes — no per-tuple bookkeeping.
func (c *Cluster) route(all []exchange.Delivery, rs *RoundStats) error {
	if rs.PerWorkerTuples == nil {
		rs.PerWorkerTuples = make([]int64, len(c.workers))
	}
	for _, d := range all {
		if d.To < 0 || d.To >= len(c.workers) {
			return fmt.Errorf("mpc: delivery to worker %d out of range [0,%d)", d.To, len(c.workers))
		}
		n := int64(d.Buf.Len())
		if n == 0 {
			continue
		}
		bits := d.Buf.Bits(relation.BitsPerValue(c.cfg.DomainN))
		c.workers[d.To].addRun(d.Rel, d.Buf)
		rs.Account(d.To, n, bits)
	}
	return nil
}

// checkCap validates the round against the receive budget.
func (c *Cluster) checkCap(rs *RoundStats) error {
	return rs.CheckCap(c.cfg.ReceiveCap())
}

// GatherAnswers collects deduplicated, sorted tuples stored under the
// given view name across all workers — the union of per-server query
// outputs — by k-way merging the workers' sorted columnar runs.
func (c *Cluster) GatherAnswers(view string) []relation.Tuple {
	return exchange.MergeRuns(c.gatherRuns(view))
}

// GatherAggregate folds the tuples stored under view across all
// workers into grouped aggregates: the same k-way merge as
// GatherAnswers, streamed through a relation.Accumulator, so the
// coordinator materializes one row per group instead of the full
// answer set.
func (c *Cluster) GatherAggregate(view string, spec relation.GroupSpec) []relation.Tuple {
	acc := relation.NewAccumulator(spec)
	exchange.FoldRuns(c.gatherRuns(view), acc.Add)
	return acc.Result()
}

// gatherRuns collects the sorted columnar runs stored under view
// across all workers.
func (c *Cluster) gatherRuns(view string) []*exchange.Buffer {
	var runs []*exchange.Buffer
	for _, w := range c.workers {
		w.mu.Lock()
		if col := w.store[view]; col != nil {
			runs = append(runs, col.Runs()...)
		}
		w.mu.Unlock()
	}
	return runs
}
