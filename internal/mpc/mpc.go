// Package mpc simulates the Massively Parallel Communication model
// MPC(ε) of Beame, Koutris, Suciu (PODS 2013, Section 2.1).
//
// A Cluster holds p workers connected by private channels. Computation
// proceeds in synchronous rounds: every worker runs a step function
// (concurrently, one goroutine per worker — the simulation's analogue
// of independent servers), the produced messages are routed, and the
// engine accounts the bits each worker *receives*. The model's single
// resource constraint is enforced here: per round a worker may receive
// at most c·N/p^{1−ε} bits, where N is the input size in bits and
// ε ∈ [0,1] is the space exponent.
//
// The paper's "input servers" (Section 2.4) are modelled by Scatter,
// which routes the tuples of one base relation to workers during the
// first round; it performs the same receive accounting.
package mpc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/relation"
)

// Config parameterizes a cluster.
type Config struct {
	// Workers is p, the number of servers. Must be ≥ 1.
	Workers int
	// Epsilon is the space exponent ε ∈ [0,1].
	Epsilon float64
	// InputBits is N, the input size in bits, used by the receive cap.
	InputBits int64
	// CapConstant is the constant c in the per-round receive cap
	// c·N/p^{1−ε}. Zero or negative disables enforcement (the engine
	// still records loads, so experiments can report them).
	CapConstant float64
	// DomainN is the domain size n; it fixes the bit cost of a tuple
	// value (⌈log2(n+1)⌉ bits).
	DomainN int
}

// validate checks the configuration.
func (c Config) validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("mpc: Workers = %d, need ≥ 1", c.Workers)
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("mpc: Epsilon = %v outside [0,1]", c.Epsilon)
	}
	if c.DomainN < 1 {
		return fmt.Errorf("mpc: DomainN = %d, need ≥ 1", c.DomainN)
	}
	return nil
}

// ReceiveCap returns the per-round per-worker receive budget in bits:
// c·N/p^{1−ε}. Returns 0 when enforcement is disabled.
func (c Config) ReceiveCap() int64 {
	if c.CapConstant <= 0 {
		return 0
	}
	cap := c.CapConstant * float64(c.InputBits) / math.Pow(float64(c.Workers), 1-c.Epsilon)
	return int64(math.Ceil(cap))
}

// Message is one point-to-point message: tuples of a named relation or
// view sent to worker To. In the tuple-based model (Section 4.2.1) all
// messages after round one have this shape; round-one messages from
// input servers use the same representation.
type Message struct {
	// To is the destination worker id in [0, p).
	To int
	// Rel names the relation or view the tuples belong to.
	Rel string
	// Tuples is the payload.
	Tuples []relation.Tuple
}

// ErrCapExceeded reports a worker receiving more bits in a round than
// the MPC(ε) budget allows.
var ErrCapExceeded = errors.New("mpc: receive cap exceeded")

// Worker is one server's local state: the tuples it has received,
// grouped by relation/view name. Workers have unlimited compute; all
// cost accounting happens on communication.
type Worker struct {
	// ID is the worker index in [0, p).
	ID int

	mu    sync.Mutex
	store map[string][]relation.Tuple
}

func newWorker(id int) *Worker {
	return &Worker{ID: id, store: make(map[string][]relation.Tuple)}
}

// Received returns the tuples of the named relation this worker has
// received so far (across all rounds). The slice must not be modified.
func (w *Worker) Received(rel string) []relation.Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.store[rel]
}

// Relations returns the names of all relations the worker holds, in
// sorted order.
func (w *Worker) Relations() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.store))
	for name := range w.store {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Store returns a snapshot map of all held tuples (shared slices; do
// not modify).
func (w *Worker) Store() map[string][]relation.Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string][]relation.Tuple, len(w.store))
	for k, v := range w.store {
		out[k] = v
	}
	return out
}

// add appends tuples to the worker's store.
func (w *Worker) add(rel string, ts []relation.Tuple) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.store[rel] = append(w.store[rel], ts...)
}

// RoundStats records the communication of one round.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// TotalBits is the sum of bits received by all workers.
	TotalBits int64
	// TotalTuples is the number of tuples received by all workers.
	TotalTuples int64
	// MaxReceivedBits is the largest per-worker received bit count.
	MaxReceivedBits int64
	// MaxReceivedTuples is the largest per-worker received tuple count.
	MaxReceivedTuples int64
	// PerWorkerBits holds bits received by each worker.
	PerWorkerBits []int64
	// PerWorkerTuples holds tuples received by each worker.
	PerWorkerTuples []int64
}

// Stats aggregates per-round statistics for a run.
type Stats struct {
	Rounds []RoundStats
}

// TotalBits sums received bits over all rounds.
func (s *Stats) TotalBits() int64 {
	var total int64
	for _, r := range s.Rounds {
		total += r.TotalBits
	}
	return total
}

// MaxLoadBits returns the largest per-worker per-round received bits.
func (s *Stats) MaxLoadBits() int64 {
	var m int64
	for _, r := range s.Rounds {
		if r.MaxReceivedBits > m {
			m = r.MaxReceivedBits
		}
	}
	return m
}

// MaxLoadTuples returns the largest per-worker per-round received
// tuple count.
func (s *Stats) MaxLoadTuples() int64 {
	var m int64
	for _, r := range s.Rounds {
		if r.MaxReceivedTuples > m {
			m = r.MaxReceivedTuples
		}
	}
	return m
}

// NumRounds returns the number of communication rounds executed.
func (s *Stats) NumRounds() int { return len(s.Rounds) }

// Replication returns total received bits divided by the input size —
// the observed replication rate (the model predicts O(p^ε) per round).
func (s *Stats) Replication(inputBits int64) float64 {
	if inputBits == 0 {
		return 0
	}
	return float64(s.TotalBits()) / float64(inputBits)
}

// Cluster is a running MPC(ε) simulation.
type Cluster struct {
	cfg     Config
	workers []*Worker
	stats   Stats
	round   int
	open    bool // a BeginRound round is accumulating deliveries
}

// NewCluster builds a cluster of cfg.Workers idle workers.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	c.workers = make([]*Worker, cfg.Workers)
	for i := range c.workers {
		c.workers[i] = newWorker(i)
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Workers returns the worker slice (shared; callers read state only).
func (c *Cluster) Workers() []*Worker { return c.workers }

// Worker returns worker i.
func (c *Cluster) Worker(i int) *Worker { return c.workers[i] }

// Stats returns the accumulated statistics.
func (c *Cluster) Stats() *Stats { return &c.stats }

// Round returns the number of completed rounds.
func (c *Cluster) Round() int { return c.round }

// TupleBits returns the bit cost of one tuple of the given arity:
// arity · ⌈log2(n+1)⌉, the Θ(log n) tuple encoding of Section 4.2.1.
func (c *Cluster) TupleBits(arity int) int64 {
	return int64(arity) * int64(relation.BitsPerValue(c.cfg.DomainN))
}

// StepFunc computes one worker's outgoing messages for a round. It is
// invoked concurrently for all workers; it must only read the worker's
// own state (the model's servers cannot see each other's memory).
type StepFunc func(round int, w *Worker) []Message

// RunRound executes one communication round: every worker's step runs
// in its own goroutine, then messages are delivered and accounted.
// If the receive cap is enforced and violated, the round still
// completes (statistics are recorded) and ErrCapExceeded is returned.
func (c *Cluster) RunRound(step StepFunc) error {
	c.round++
	out := make([][]Message, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			out[i] = step(c.round, w)
		}(i, w)
	}
	wg.Wait()
	var all []Message
	for _, ms := range out {
		all = append(all, ms...)
	}
	return c.deliver(all)
}

// Scatter performs an input-server round-one transmission for one base
// relation: route(t) lists the destination workers of each tuple.
// Multiple Scatter calls within the same logical round should be
// grouped with BeginRound/EndRound; Scatter alone accounts its
// delivery as part of the current open round if one exists, otherwise
// as a fresh round.
func (c *Cluster) Scatter(rel *relation.Relation, route func(t relation.Tuple) []int) error {
	msgs := make(map[int]*Message)
	for _, t := range rel.Tuples {
		for _, dst := range route(t) {
			if dst < 0 || dst >= len(c.workers) {
				return fmt.Errorf("mpc: scatter %s: destination %d out of range", rel.Name, dst)
			}
			m, ok := msgs[dst]
			if !ok {
				m = &Message{To: dst, Rel: rel.Name}
				msgs[dst] = m
			}
			m.Tuples = append(m.Tuples, t)
		}
	}
	var all []Message
	for _, m := range msgs {
		all = append(all, *m)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].To < all[j].To })
	return c.deliverIntoOpenRound(all)
}

// Broadcast sends every tuple of rel to all workers (used for tiny
// relations such as the √n-sized unary endpoints in Prop 3.12).
func (c *Cluster) Broadcast(rel *relation.Relation) error {
	return c.Scatter(rel, func(relation.Tuple) []int {
		dsts := make([]int, len(c.workers))
		for i := range dsts {
			dsts[i] = i
		}
		return dsts
	})
}

// BeginRound opens a new round into which a sequence of Scatter or
// Broadcast calls accumulate — they logically belong to a single
// communication step (e.g. all input servers transmitting in round 1).
func (c *Cluster) BeginRound() {
	c.round++
	c.open = true
	c.stats.Rounds = append(c.stats.Rounds, RoundStats{
		Round:         c.round,
		PerWorkerBits: make([]int64, len(c.workers)),
	})
}

// EndRound closes the round opened by BeginRound and reports a cap
// violation, if any.
func (c *Cluster) EndRound() error {
	if !c.open {
		return errors.New("mpc: EndRound without BeginRound")
	}
	c.open = false
	return c.checkCap(&c.stats.Rounds[len(c.stats.Rounds)-1])
}

// deliver routes messages as a fresh (already counted) round.
func (c *Cluster) deliver(all []Message) error {
	rs := RoundStats{Round: c.round, PerWorkerBits: make([]int64, len(c.workers))}
	if err := c.route(all, &rs); err != nil {
		return err
	}
	c.stats.Rounds = append(c.stats.Rounds, rs)
	return c.checkCap(&c.stats.Rounds[len(c.stats.Rounds)-1])
}

// deliverIntoOpenRound routes messages into the round opened by
// BeginRound, or a fresh self-contained round if none is open.
func (c *Cluster) deliverIntoOpenRound(all []Message) error {
	if c.open {
		return c.route(all, &c.stats.Rounds[len(c.stats.Rounds)-1])
	}
	c.round++
	rs := RoundStats{Round: c.round, PerWorkerBits: make([]int64, len(c.workers))}
	if err := c.route(all, &rs); err != nil {
		return err
	}
	c.stats.Rounds = append(c.stats.Rounds, rs)
	return c.checkCap(&c.stats.Rounds[len(c.stats.Rounds)-1])
}

// route appends tuples to destinations and updates rs cumulatively
// (several deliveries may share one round via BeginRound).
func (c *Cluster) route(all []Message, rs *RoundStats) error {
	if rs.PerWorkerTuples == nil {
		rs.PerWorkerTuples = make([]int64, len(c.workers))
	}
	for _, m := range all {
		if m.To < 0 || m.To >= len(c.workers) {
			return fmt.Errorf("mpc: message to worker %d out of range [0,%d)", m.To, len(c.workers))
		}
		if len(m.Tuples) == 0 {
			continue
		}
		arity := len(m.Tuples[0])
		bits := c.TupleBits(arity) * int64(len(m.Tuples))
		c.workers[m.To].add(m.Rel, m.Tuples)
		rs.PerWorkerBits[m.To] += bits
		rs.PerWorkerTuples[m.To] += int64(len(m.Tuples))
		rs.TotalBits += bits
		rs.TotalTuples += int64(len(m.Tuples))
		if rs.PerWorkerBits[m.To] > rs.MaxReceivedBits {
			rs.MaxReceivedBits = rs.PerWorkerBits[m.To]
		}
		if rs.PerWorkerTuples[m.To] > rs.MaxReceivedTuples {
			rs.MaxReceivedTuples = rs.PerWorkerTuples[m.To]
		}
	}
	return nil
}

// checkCap validates the round against the receive budget.
func (c *Cluster) checkCap(rs *RoundStats) error {
	budget := c.cfg.ReceiveCap()
	if budget <= 0 {
		return nil
	}
	for w, bits := range rs.PerWorkerBits {
		if bits > budget {
			return fmt.Errorf("%w: worker %d received %d bits in round %d, budget %d",
				ErrCapExceeded, w, bits, rs.Round, budget)
		}
	}
	return nil
}

// GatherAnswers collects deduplicated, sorted tuples stored under the
// given view name across all workers — the union of per-server query
// outputs.
func (c *Cluster) GatherAnswers(view string) []relation.Tuple {
	var out []relation.Tuple
	for _, w := range c.workers {
		out = append(out, w.Received(view)...)
	}
	return relation.DedupSort(out)
}
