package serve

import (
	_ "embed"
	"net/http"
)

// uiHTML is the single-file operator console served at GET /ui. It
// polls GET /ops and renders live in-flight queries per tenant, the
// per-worker predicted-vs-actual load heatmap, cache hit rates, and
// the recent-execution history — no build step, no external assets.
//
//go:embed ui.html
var uiHTML []byte

// handleUI is GET /ui: the embedded operator console.
func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(uiHTML)
}
