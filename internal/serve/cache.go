package serve

import (
	"container/list"
	"sync"

	"repro/internal/plan"
)

// PlanCache is a fixed-capacity LRU cache of compiled plans keyed by
// plan.CacheKey fingerprints. Plans are immutable after Build (see
// internal/plan), so a cached entry may be handed to any number of
// concurrent executors. The cache is safe for concurrent use.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

// cacheEntry is one resident plan.
type cacheEntry struct {
	key string
	pl  *plan.Plan
}

// NewPlanCache returns an empty cache holding at most capacity plans;
// capacity < 1 selects 1.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the plan cached under key and marks it most recently
// used, or (nil, false).
func (c *PlanCache) Get(key string) (*plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).pl, true
}

// Put inserts (or refreshes) a plan under key, evicting the least
// recently used entry when the cache is full.
func (c *PlanCache) Put(key string, pl *plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).pl = pl
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, pl: pl})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of resident plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the maximum number of resident plans.
func (c *PlanCache) Capacity() int { return c.capacity }
