package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
)

// TenantConfig declares one tenant of a multi-tenant service: an
// API-key identity plus the tenant's resource quotas. Any quota left
// at ≤ 0 is unlimited for that tenant.
type TenantConfig struct {
	// Name labels the tenant in metrics, traces, and the operator
	// console. Required, unique.
	Name string
	// Key is the tenant's API key, presented as "Authorization: Bearer
	// <key>" or "X-API-Key: <key>" on data-plane requests. Required,
	// unique.
	Key string
	// QPS is the sustained query-rate quota in requests per second,
	// enforced by a token bucket. ≤ 0 disables rate limiting.
	QPS float64
	// Burst is the token bucket capacity — the number of requests the
	// tenant may issue back-to-back before the QPS rate applies. ≤ 0
	// selects 1 (meaningful only when QPS > 0).
	Burst int
	// MaxInFlightLoad bounds the summed predicted load, in tuples, of
	// the tenant's concurrently executing queries — the same
	// plan-predicted cost the global admission gate budgets
	// (plan.CostEstimate.LoadTuples × p). A single query larger than
	// the whole quota is clamped to it and so runs alone. ≤ 0 is
	// unlimited.
	MaxInFlightLoad int64
	// MaxResidentBytes bounds the estimated resident bytes of datasets
	// the tenant registers (and grows through deltas). ≤ 0 is
	// unlimited.
	MaxResidentBytes int64
}

// Quota-rejection reasons, reported in QuotaError.Reason and as the
// reason label of mpcserve_tenant_rejected_total.
const (
	// ReasonRate is a token-bucket rejection (QPS/Burst exceeded).
	ReasonRate = "rate"
	// ReasonLoad is an in-flight predicted-load rejection.
	ReasonLoad = "load"
	// ReasonBytes is a resident-dataset-bytes rejection.
	ReasonBytes = "bytes"
)

// QuotaError is the structured body of a 429 response. RetryAfterMs
// is the earliest time a retry can succeed for rate rejections; for
// load rejections it is a polling hint (capacity frees when an
// in-flight query finishes); for bytes rejections it is 0 — retrying
// cannot succeed until the tenant frees datasets.
type QuotaError struct {
	// Err is the human-readable failure.
	Err string `json:"error"`
	// Tenant is the rejected tenant's name.
	Tenant string `json:"tenant"`
	// Reason is ReasonRate, ReasonLoad, or ReasonBytes.
	Reason string `json:"reason"`
	// RetryAfterMs is the suggested retry delay in milliseconds.
	RetryAfterMs int64 `json:"retryAfterMs"`
}

// Error implements error.
func (q *QuotaError) Error() string { return q.Err }

// writeQuotaError renders a 429 with the structured body and a
// Retry-After header in (ceiled) seconds when a retry can succeed.
func writeQuotaError(w http.ResponseWriter, q *QuotaError) {
	if q.RetryAfterMs > 0 {
		w.Header().Set("Retry-After", fmt.Sprint((q.RetryAfterMs+999)/1000))
	}
	writeJSON(w, http.StatusTooManyRequests, q)
}

// Tenant is the runtime state of one configured tenant: its token
// bucket, in-flight load and resident-bytes accounting, and its
// metric counters. All methods are safe for concurrent use.
type Tenant struct {
	cfg TenantConfig

	mu            sync.Mutex
	tokens        float64
	lastRefill    time.Time
	inFlightLoad  int64
	residentBytes int64

	// QueriesServed counts the tenant's successfully answered queries.
	QueriesServed atomic.Int64
	// QueryErrors counts the tenant's queries that failed after
	// admission.
	QueryErrors atomic.Int64
	// RejectedRate, RejectedLoad, and RejectedBytes count 429s by
	// quota reason.
	RejectedRate  atomic.Int64
	RejectedLoad  atomic.Int64
	RejectedBytes atomic.Int64
	// InFlight is the tenant's currently executing query count.
	InFlight atomic.Int64
	// AnswersReturned counts answer tuples shipped to the tenant.
	AnswersReturned atomic.Int64
}

// Name returns the tenant's configured name.
func (t *Tenant) Name() string { return t.cfg.Name }

// Config returns the tenant's quota configuration.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Rejected returns the tenant's total 429 count across all reasons.
func (t *Tenant) Rejected() int64 {
	return t.RejectedRate.Load() + t.RejectedLoad.Load() + t.RejectedBytes.Load()
}

// InFlightLoad returns the summed predicted load of the tenant's
// currently admitted queries, in tuples.
func (t *Tenant) InFlightLoad() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.inFlightLoad
}

// ResidentBytes returns the tenant's accounted resident dataset
// bytes.
func (t *Tenant) ResidentBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.residentBytes
}

// AdmitRate spends one token from the tenant's bucket, refilled at
// QPS up to Burst as of now. It returns nil on admission or a
// ReasonRate QuotaError whose RetryAfterMs is the exact time until
// the next token accrues. The rejection counter is updated here, so
// callers only render the error.
func (t *Tenant) AdmitRate(now time.Time) *QuotaError {
	if t.cfg.QPS <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	burst := float64(t.cfg.Burst)
	if burst < 1 {
		burst = 1
	}
	if t.lastRefill.IsZero() {
		t.tokens = burst
	} else if el := now.Sub(t.lastRefill).Seconds(); el > 0 {
		t.tokens = math.Min(burst, t.tokens+el*t.cfg.QPS)
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		return nil
	}
	t.RejectedRate.Add(1)
	retryMs := int64(math.Ceil((1 - t.tokens) / t.cfg.QPS * 1000))
	return &QuotaError{
		Err:          fmt.Sprintf("tenant %s over query-rate quota (%.3g qps, burst %d)", t.cfg.Name, t.cfg.QPS, t.cfg.Burst),
		Tenant:       t.cfg.Name,
		Reason:       ReasonRate,
		RetryAfterMs: retryMs,
	}
}

// clampLoad applies the oversized-query rule: a single query whose
// predicted cost exceeds the whole quota books exactly the quota, so
// it can run — alone. Admit and Release apply the same clamp.
func (t *Tenant) clampLoad(cost int64) int64 {
	if t.cfg.MaxInFlightLoad > 0 && cost > t.cfg.MaxInFlightLoad {
		cost = t.cfg.MaxInFlightLoad
	}
	return cost
}

// AdmitLoad books a query of the given predicted cost (in tuples)
// against the tenant's in-flight load quota, or returns a ReasonLoad
// QuotaError without blocking — per-tenant quota breaches reject
// immediately rather than queueing, unlike the global gate. Every nil
// return must be paired with ReleaseLoad(cost).
func (t *Tenant) AdmitLoad(cost int64) *QuotaError {
	if t.cfg.MaxInFlightLoad <= 0 {
		return nil
	}
	cost = t.clampLoad(cost)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inFlightLoad+cost > t.cfg.MaxInFlightLoad {
		t.RejectedLoad.Add(1)
		return &QuotaError{
			Err: fmt.Sprintf("tenant %s over in-flight load quota (%d of %d tuples booked, query needs %d)",
				t.cfg.Name, t.inFlightLoad, t.cfg.MaxInFlightLoad, cost),
			Tenant:       t.cfg.Name,
			Reason:       ReasonLoad,
			RetryAfterMs: 1000,
		}
	}
	t.inFlightLoad += cost
	return nil
}

// ReleaseLoad returns a query's predicted-load booking. The cost must
// equal the value passed to the paired AdmitLoad.
func (t *Tenant) ReleaseLoad(cost int64) {
	if t.cfg.MaxInFlightLoad <= 0 {
		return
	}
	cost = t.clampLoad(cost)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inFlightLoad -= cost
}

// AdmitBytes books n estimated resident bytes against the tenant's
// dataset quota, or returns a ReasonBytes QuotaError. Unlike load,
// bytes are not clamped: a dataset larger than the quota is rejected
// outright, since residency is not transient.
func (t *Tenant) AdmitBytes(n int64) *QuotaError {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.MaxResidentBytes > 0 && t.residentBytes+n > t.cfg.MaxResidentBytes {
		t.RejectedBytes.Add(1)
		return &QuotaError{
			Err: fmt.Sprintf("tenant %s over resident-bytes quota (%d of %d bytes resident, dataset adds %d)",
				t.cfg.Name, t.residentBytes, t.cfg.MaxResidentBytes, n),
			Tenant: t.cfg.Name,
			Reason: ReasonBytes,
		}
	}
	t.residentBytes += n
	return nil
}

// ReleaseBytes returns previously booked resident bytes (dataset
// deltas that net-delete, or a registration undone by a late
// failure).
func (t *Tenant) ReleaseBytes(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.residentBytes -= n
	if t.residentBytes < 0 {
		t.residentBytes = 0
	}
}

// Tenants is the tenant directory of a multi-tenant server: API-key
// lookup plus the per-tenant metric export. A nil *Tenants means
// single-tenant open mode (no authentication, no per-tenant quotas).
type Tenants struct {
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	list   []*Tenant // configuration order
}

// NewTenants validates the configs (names and keys required and
// unique) and returns the directory.
func NewTenants(cfgs []TenantConfig) (*Tenants, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("serve: no tenants configured")
	}
	ts := &Tenants{
		byKey:  make(map[string]*Tenant, len(cfgs)),
		byName: make(map[string]*Tenant, len(cfgs)),
	}
	for _, cfg := range cfgs {
		if cfg.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if cfg.Key == "" {
			return nil, fmt.Errorf("serve: tenant %s has an empty API key", cfg.Name)
		}
		if _, dup := ts.byName[cfg.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant name %s", cfg.Name)
		}
		if _, dup := ts.byKey[cfg.Key]; dup {
			return nil, fmt.Errorf("serve: tenant %s reuses another tenant's API key", cfg.Name)
		}
		t := &Tenant{cfg: cfg}
		ts.byKey[cfg.Key] = t
		ts.byName[cfg.Name] = t
		ts.list = append(ts.list, t)
	}
	return ts, nil
}

// Authenticate resolves the request's API key — "Authorization:
// Bearer <key>" or "X-API-Key: <key>" — to a tenant. A missing or
// unknown key is an error (rendered as 401 by the handlers).
func (ts *Tenants) Authenticate(r *http.Request) (*Tenant, error) {
	key := r.Header.Get("X-API-Key")
	if auth := r.Header.Get("Authorization"); key == "" && auth != "" {
		var ok bool
		if key, ok = strings.CutPrefix(auth, "Bearer "); !ok {
			return nil, fmt.Errorf("serve: Authorization header is not a Bearer token")
		}
	}
	if key == "" {
		return nil, fmt.Errorf("serve: missing API key (use Authorization: Bearer <key> or X-API-Key)")
	}
	t, ok := ts.byKey[key]
	if !ok {
		return nil, fmt.Errorf("serve: unknown API key")
	}
	return t, nil
}

// Get returns the named tenant.
func (ts *Tenants) Get(name string) (*Tenant, bool) {
	t, ok := ts.byName[name]
	return t, ok
}

// All returns the tenants in configuration order.
func (ts *Tenants) All() []*Tenant { return ts.list }

// WriteProm renders the per-tenant counters as labeled Prometheus
// series, appended to the server's metric exposition.
func (ts *Tenants) WriteProm(w io.Writer) {
	series := func(name, typ, help string, value func(t *Tenant) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, t := range ts.list {
			fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, t.cfg.Name, value(t))
		}
	}
	series("mpcserve_tenant_queries_total", "counter", "Queries answered successfully, by tenant.",
		func(t *Tenant) string { return fmt.Sprint(t.QueriesServed.Load()) })
	series("mpcserve_tenant_query_errors_total", "counter", "Queries that failed after admission, by tenant.",
		func(t *Tenant) string { return fmt.Sprint(t.QueryErrors.Load()) })
	series("mpcserve_tenant_in_flight", "gauge", "Queries currently executing, by tenant.",
		func(t *Tenant) string { return fmt.Sprint(t.InFlight.Load()) })
	series("mpcserve_tenant_inflight_load_tuples", "gauge", "Summed predicted load of executing queries, by tenant.",
		func(t *Tenant) string { return fmt.Sprint(t.InFlightLoad()) })
	series("mpcserve_tenant_resident_bytes", "gauge", "Estimated resident dataset bytes, by tenant.",
		func(t *Tenant) string { return fmt.Sprint(t.ResidentBytes()) })
	series("mpcserve_tenant_answers_total", "counter", "Answer tuples returned, by tenant.",
		func(t *Tenant) string { return fmt.Sprint(t.AnswersReturned.Load()) })
	fmt.Fprintf(w, "# HELP mpcserve_tenant_rejected_total Requests rejected 429, by tenant and quota reason.\n# TYPE mpcserve_tenant_rejected_total counter\n")
	for _, t := range ts.list {
		for _, rc := range []struct {
			reason string
			n      int64
		}{
			{ReasonRate, t.RejectedRate.Load()},
			{ReasonLoad, t.RejectedLoad.Load()},
			{ReasonBytes, t.RejectedBytes.Load()},
		} {
			fmt.Fprintf(w, "mpcserve_tenant_rejected_total{tenant=%q,reason=%q} %d\n", t.cfg.Name, rc.reason, rc.n)
		}
	}
}

// DatasetBytes estimates a database's resident footprint: 8 bytes per
// stored integer across every relation's tuples. It is the unit of
// the MaxResidentBytes quota.
func DatasetBytes(db *relation.Database) int64 {
	var n int64
	for _, name := range db.Names() {
		rel, _ := db.Relation(name)
		n += int64(rel.Size()) * int64(rel.Arity()) * 8
	}
	return n
}
