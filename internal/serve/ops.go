package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/trace"
)

// TraceSummary is one query execution in the GET /trace listing and
// the /ops report: identity, shape, and the predicted-vs-actual load
// numbers the console's heatmap renders.
type TraceSummary struct {
	// QueryID keys GET /trace/{queryID}.
	QueryID string `json:"queryID"`
	// Tenant is the owning tenant (empty in open mode).
	Tenant string `json:"tenant,omitempty"`
	// Query is the canonical query text.
	Query string `json:"query,omitempty"`
	// Engine names the executed strategy.
	Engine string `json:"engine,omitempty"`
	// P is the cluster size.
	P int `json:"p"`
	// Rounds is the number of communication rounds recorded so far.
	Rounds int `json:"rounds"`
	// Replacements counts workers replaced mid-query.
	Replacements int `json:"replacements,omitempty"`
	// PredictedLoadTuples is the planner's per-worker load prediction L.
	PredictedLoadTuples float64 `json:"predictedLoadTuples"`
	// BudgetLoadTuples is the MPC(ε) budget c·N/p^(1−ε).
	BudgetLoadTuples int64 `json:"budgetLoadTuples,omitempty"`
	// WorkerLoadTuples is the actual maximum per-round received load,
	// per worker index — the heatmap's observed column.
	WorkerLoadTuples []int64 `json:"workerLoadTuples,omitempty"`
	// StartUnixNs is the execution's start time.
	StartUnixNs int64 `json:"startUnixNs"`
	// DurationMs is the execution time (0 while still running).
	DurationMs float64 `json:"durationMs"`
	// Active reports the query is still executing.
	Active bool `json:"active,omitempty"`
}

// summarizeTrace condenses a (possibly still-live) trace.
func summarizeTrace(tc *trace.Trace) TraceSummary {
	sn := tc.Snapshot()
	rounds := 0
	for _, s := range sn.Spans {
		if s.Name == "round" {
			rounds++
		}
	}
	return TraceSummary{
		QueryID:             sn.QueryID,
		Tenant:              sn.Tenant,
		Query:               sn.Query,
		Engine:              sn.Engine,
		P:                   sn.P,
		Rounds:              rounds,
		Replacements:        sn.Replacements,
		PredictedLoadTuples: sn.PredictedLoadTuples,
		BudgetLoadTuples:    sn.BudgetLoadTuples,
		WorkerLoadTuples:    tc.WorkerLoad(),
		StartUnixNs:         sn.StartUnixNs,
		DurationMs:          float64(sn.DurationNs) / 1e6,
		Active:              sn.DurationNs == 0,
	}
}

// handleTraceList is GET /trace: recent executions, newest first. The
// optional ?n= caps the listing.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	n := s.traces.Len()
	if arg := r.URL.Query().Get("n"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "bad n %q", arg)
			return
		}
		n = v
	}
	out := []TraceSummary{}
	for _, tc := range s.traces.Recent(n) {
		out = append(out, summarizeTrace(tc))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceOne is GET /trace/{queryID}: the execution's full span
// tree — one "round" span per round, one "worker" child span per
// worker per round carrying the actual received load the planner's
// predicted L bounds, join/gather phase spans, and recovery events.
func (s *Server) handleTraceOne(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := r.PathValue("queryID")
	tc, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query id %q (the trace ring keeps the last %d executions)", id, s.cfg.TraceCapacity)
		return
	}
	writeJSON(w, http.StatusOK, tc.Snapshot())
}

// TenantStatus is one tenant's row in the /ops report.
type TenantStatus struct {
	// Name is the tenant's name.
	Name string `json:"name"`
	// QPS and Burst echo the rate quota (0 = unlimited).
	QPS   float64 `json:"qps,omitempty"`
	Burst int     `json:"burst,omitempty"`
	// InFlight is the tenant's executing query count.
	InFlight int64 `json:"inFlight"`
	// InFlightLoadTuples and MaxInFlightLoad are the booked and
	// maximum predicted load.
	InFlightLoadTuples int64 `json:"inFlightLoadTuples"`
	MaxInFlightLoad    int64 `json:"maxInFlightLoad,omitempty"`
	// ResidentBytes and MaxResidentBytes are the booked and maximum
	// dataset residency.
	ResidentBytes    int64 `json:"residentBytes"`
	MaxResidentBytes int64 `json:"maxResidentBytes,omitempty"`
	// Served, Errors, and the Rejected* counters mirror the tenant's
	// Prometheus series.
	Served        int64 `json:"served"`
	Errors        int64 `json:"errors"`
	RejectedRate  int64 `json:"rejectedRate"`
	RejectedLoad  int64 `json:"rejectedLoad"`
	RejectedBytes int64 `json:"rejectedBytes"`
}

// GateStatus is the global admission gate's state in the /ops report.
type GateStatus struct {
	// InFlight and Queued are current executions and blocked waiters.
	InFlight int `json:"inFlight"`
	Queued   int `json:"queued"`
	// Slots is the concurrency capacity.
	Slots int `json:"slots"`
	// LoadTuples and BudgetTuples are the booked and maximum summed
	// predicted load (budget 0 = unbounded).
	LoadTuples   int64 `json:"loadTuples"`
	BudgetTuples int64 `json:"budgetTuples"`
}

// CacheStatus is the plan cache's state in the /ops report.
type CacheStatus struct {
	// Len and Capacity are the resident and maximum compiled plans.
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
	// HitRate is hits/(hits+misses) over lookups.
	HitRate float64 `json:"hitRate"`
}

// OpsReport is the GET /ops body — everything the operator console
// renders in one read.
type OpsReport struct {
	// UptimeSeconds is the service age.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// MultiTenant reports tenant auth and quotas are active.
	MultiTenant bool `json:"multiTenant"`
	// Datasets lists the registered dataset names.
	Datasets []string `json:"datasets"`
	// Gate is the global admission state.
	Gate GateStatus `json:"gate"`
	// PlanCache is the compiled-plan cache state.
	PlanCache CacheStatus `json:"planCache"`
	// StatsCacheHitRate is the statistics memoization hit rate.
	StatsCacheHitRate float64 `json:"statsCacheHitRate"`
	// QueriesServed, QueryErrors, and QueriesRejected are the global
	// outcome counters.
	QueriesServed   int64 `json:"queriesServed"`
	QueryErrors     int64 `json:"queryErrors"`
	QueriesRejected int64 `json:"queriesRejected"`
	// PerRoundBits is the cumulative shuffle-bit histogram by round
	// number.
	PerRoundBits []int64 `json:"perRoundBits,omitempty"`
	// Tenants lists per-tenant quota state (multi-tenant mode only).
	Tenants []TenantStatus `json:"tenants,omitempty"`
	// Queries lists recent executions, newest first, in-flight
	// included.
	Queries []TraceSummary `json:"queries"`
}

// handleOps is GET /ops: the operator console's JSON feed.
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	rep := OpsReport{
		UptimeSeconds: time.Since(s.started).Seconds(),
		MultiTenant:   s.tenants != nil,
		Datasets:      s.registry.Names(),
		Gate: GateStatus{
			InFlight:     s.gate.InFlight(),
			Queued:       s.gate.Queued(),
			Slots:        s.gate.Slots(),
			LoadTuples:   s.gate.Load(),
			BudgetTuples: s.gate.Budget(),
		},
		PlanCache: CacheStatus{
			Len:      s.cache.Len(),
			Capacity: s.cache.Capacity(),
			HitRate:  s.metrics.PlanCacheHitRate(),
		},
		StatsCacheHitRate: s.metrics.StatsCacheHitRate(),
		QueriesServed:     s.metrics.QueriesServed.Load(),
		QueryErrors:       s.metrics.QueryErrors.Load(),
		QueriesRejected:   s.metrics.QueriesRejected.Load(),
		PerRoundBits:      s.metrics.PerRoundBits(),
		Queries:           []TraceSummary{},
	}
	if s.tenants != nil {
		for _, t := range s.tenants.All() {
			cfg := t.Config()
			rep.Tenants = append(rep.Tenants, TenantStatus{
				Name:               cfg.Name,
				QPS:                cfg.QPS,
				Burst:              cfg.Burst,
				InFlight:           t.InFlight.Load(),
				InFlightLoadTuples: t.InFlightLoad(),
				MaxInFlightLoad:    cfg.MaxInFlightLoad,
				ResidentBytes:      t.ResidentBytes(),
				MaxResidentBytes:   cfg.MaxResidentBytes,
				Served:             t.QueriesServed.Load(),
				Errors:             t.QueryErrors.Load(),
				RejectedRate:       t.RejectedRate.Load(),
				RejectedLoad:       t.RejectedLoad.Load(),
				RejectedBytes:      t.RejectedBytes.Load(),
			})
		}
	}
	for _, tc := range s.traces.Recent(50) {
		rep.Queries = append(rep.Queries, summarizeTrace(tc))
	}
	writeJSON(w, http.StatusOK, rep)
}
