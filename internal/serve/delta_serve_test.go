package serve_test

// Tests of the streaming-ingest and continuous-query surface: delta
// versioning and plan-cache keying, warm materialized answers against
// ground truth across delta batches, the planner's skew-engine flip
// under heavy-hitter drift (incremental statistics must flip it
// exactly when from-scratch statistics would), and a concurrency
// regression mixing deltas, warm reads, and cold queries under -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/serve"
)

// postJSON posts v to url and decodes the JSON reply into out,
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url and decodes the JSON reply into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// answersMatch compares HTTP answer rows against ground-truth tuples.
func answersMatch(rows [][]int, truth []relation.Tuple) bool {
	if len(rows) != len(truth) {
		return false
	}
	for i, row := range rows {
		if len(row) != len(truth[i]) {
			return false
		}
		for j, v := range row {
			if v != truth[i][j] {
				return false
			}
		}
	}
	return true
}

// freshTriangle returns values (a,b,c) in [1,n] such that S1(a,b),
// S2(b,c) and S3(c,a) are all absent from db — appending them adds
// exactly one new triangle, and deleting any of them afterwards
// removes a tuple with exactly one occurrence.
func freshTriangle(t *testing.T, db *relation.Database, n int) (int, int, int) {
	t.Helper()
	has := func(rel string, x, y int) bool {
		r, ok := db.Relation(rel)
		if !ok {
			t.Fatalf("relation %s missing", rel)
		}
		for _, tup := range r.Tuples {
			if tup[0] == x && tup[1] == y {
				return true
			}
		}
		return false
	}
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			for c := 1; c <= n; c++ {
				if !has("S1", a, b) && !has("S2", b, c) && !has("S3", c, a) {
					return a, b, c
				}
			}
		}
	}
	t.Fatal("no fresh triangle in the dataset")
	return 0, 0, 0
}

// TestDeltaVersioningAndPlanCache drives the delta endpoint end to
// end: versions advance, deltas land in query answers, the plan cache
// keys on the version (a delta forces a re-plan, a repeat at the same
// version hits), and post-delta statistics are pre-installed (no
// collection scan, statsCached stays true).
func TestDeltaVersioningAndPlanCache(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{DefaultP: 4, MaxAnswers: 100000}, 12)

	q, err := query.ParseFamily("C3")
	if err != nil {
		t.Fatal(err)
	}
	ask := func() *serve.QueryResponse {
		out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3"})
		return out
	}
	first := ask()
	if first.PlanCached {
		t.Fatal("first query reported a cached plan")
	}

	// Append one provably fresh triangle.
	ds0, _ := srv.Registry().Get("tri")
	a, b, c := freshTriangle(t, ds0.DB(), 12)
	var dr serve.DeltaResponse
	code := postJSON(t, ts.URL+"/datasets/tri/delta", serve.DeltaRequest{
		Appends: map[string][][]int{
			"S1": {{a, b}}, "S2": {{b, c}}, "S3": {{c, a}},
		},
	}, &dr)
	if code != http.StatusOK {
		t.Fatalf("delta status %d", code)
	}
	if dr.Version != 1 || dr.Appended != 3 || dr.Deleted != 0 {
		t.Fatalf("unexpected delta response %+v", dr)
	}

	ds, _ := srv.Registry().Get("tri")
	if ds.Version() != 1 {
		t.Fatalf("dataset version %d, want 1", ds.Version())
	}
	second := ask()
	if second.PlanCached {
		t.Fatal("post-delta query hit the stale-version plan")
	}
	if !second.StatsCached {
		t.Fatal("post-delta statistics were not pre-installed")
	}
	if second.Fingerprint == first.Fingerprint {
		t.Fatal("fingerprint did not change with the dataset version")
	}
	truth, err := core.GroundTruth(q, ds.DB())
	if err != nil {
		t.Fatal(err)
	}
	if !answersMatch(second.Answers, truth) {
		t.Fatalf("post-delta answers diverge from ground truth: %d vs %d tuples",
			len(second.Answers), len(truth))
	}
	third := ask()
	if !third.PlanCached {
		t.Fatal("repeat query at the same version missed the plan cache")
	}

	// Delete one atom of the appended triangle: the answer must drop.
	code = postJSON(t, ts.URL+"/datasets/tri/delta", serve.DeltaRequest{
		Deletes: map[string][][]int{"S1": {{a, b}}},
	}, &dr)
	if code != http.StatusOK {
		t.Fatalf("delete delta status %d", code)
	}
	if dr.Version != 2 || dr.Deleted != 1 {
		t.Fatalf("unexpected delete response %+v", dr)
	}
	truth, err = core.GroundTruth(q, ds.DB())
	if err != nil {
		t.Fatal(err)
	}
	if !answersMatch(ask().Answers, truth) {
		t.Fatal("post-delete answers diverge from ground truth")
	}

	// Invalid deltas are rejected without changing the version.
	for name, body := range map[string]string{
		"unknown relation": `{"appends":{"X":[[1,2]]}}`,
		"bad delete":       fmt.Sprintf(`{"deletes":{"S1":[[%d,%d]]}}`, a, b), // already deleted above
		"empty":            `{}`,
		"unknown field":    `{"append":{"S1":[[1,2]]}}`,
		"zero value":       `{"appends":{"S1":[[0,2]]}}`,
		"out of domain":    `{"appends":{"S1":[[1,13]]}}`,
		"mixed arity":      `{"appends":{"S1":[[1,2],[1,2,3]]}}`,
	} {
		resp, err := http.Post(ts.URL+"/datasets/tri/delta", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if ds.Version() != 2 {
		t.Fatalf("rejected deltas moved the version to %d", ds.Version())
	}
	if got := srv.Metrics().DeltasTotal.Load(); got != 2 {
		t.Fatalf("DeltasTotal = %d, want 2", got)
	}
}

// TestContinuousQueryLifecycle registers a continuous query, checks
// its warm answers against ground truth across append and delete
// batches, and deregisters it.
func TestContinuousQueryLifecycle(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{DefaultP: 4, MaxAnswers: 100000}, 15)
	q, err := query.ParseFamily("C3")
	if err != nil {
		t.Fatal(err)
	}

	var info serve.ContinuousInfo
	code := postJSON(t, ts.URL+"/continuous", serve.ContinuousRequest{
		Name: "tri-live", Dataset: "tri", Family: "C3",
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	if info.Version != 0 || info.P != 4 {
		t.Fatalf("unexpected registration info %+v", info)
	}
	// Duplicate name conflicts.
	if code := postJSON(t, ts.URL+"/continuous", serve.ContinuousRequest{
		Name: "tri-live", Dataset: "tri", Family: "C3",
	}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate registration status %d, want 409", code)
	}

	ds, _ := srv.Registry().Get("tri")
	checkWarm := func(wantVersion uint64) {
		t.Helper()
		var ans serve.ContinuousAnswers
		if code := getJSON(t, ts.URL+"/continuous/tri-live", &ans); code != http.StatusOK {
			t.Fatalf("warm read status %d", code)
		}
		if ans.Error != "" {
			t.Fatalf("continuous query broken: %s", ans.Error)
		}
		if ans.Version != wantVersion || ans.DatasetVersion != wantVersion {
			t.Fatalf("warm read at version %d/%d, want %d", ans.Version, ans.DatasetVersion, wantVersion)
		}
		truth, err := core.GroundTruth(q, ds.DB())
		if err != nil {
			t.Fatal(err)
		}
		if !answersMatch(ans.Answers, truth) {
			t.Fatalf("warm answers diverge from ground truth at version %d: %d vs %d tuples",
				wantVersion, len(ans.Answers), len(truth))
		}
	}
	checkWarm(0)

	a, b, c := freshTriangle(t, ds.DB(), 15)
	var dr serve.DeltaResponse
	postJSON(t, ts.URL+"/datasets/tri/delta", serve.DeltaRequest{
		Appends: map[string][][]int{"S1": {{a, b}}, "S2": {{b, c}}, "S3": {{c, a}}},
	}, &dr)
	if len(dr.Maintained) != 1 || dr.Maintained[0].Name != "tri-live" {
		t.Fatalf("delta did not maintain the continuous query: %+v", dr.Maintained)
	}
	if dr.Maintained[0].AnswersAdded < 1 {
		t.Fatalf("appending a triangle added %d answers", dr.Maintained[0].AnswersAdded)
	}
	if dr.Maintained[0].RoutedTuples < 1 || dr.Maintained[0].Bits < 1 {
		t.Fatalf("maintenance reported no routed traffic: %+v", dr.Maintained[0])
	}
	checkWarm(1)

	postJSON(t, ts.URL+"/datasets/tri/delta", serve.DeltaRequest{
		Deletes: map[string][][]int{"S2": {{b, c}}},
	}, &dr)
	if dr.Maintained[0].AnswersRemoved < 1 {
		t.Fatalf("deleting a witness removed %d answers", dr.Maintained[0].AnswersRemoved)
	}
	checkWarm(2)

	if got := srv.Metrics().MaintenanceBits.Load(); got <= 0 {
		t.Fatalf("MaintenanceBits = %d after maintenance", got)
	}

	// Listing includes it; deletion removes it.
	var list []serve.ContinuousInfo
	if code := getJSON(t, ts.URL+"/continuous", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("listing: code %d, %d entries", code, len(list))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/continuous/tri-live", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/continuous/tri-live", nil); code != http.StatusNotFound {
		t.Fatalf("read after delete status %d, want 404", code)
	}
}

// TestPlannerSkewFlipUnderDeltas is the heavy-hitter drift property:
// as deltas pile tuples onto one join value, the engine selected
// through the incrementally maintained statistics must equal the
// engine a from-scratch statistics collection selects — at every
// version, including the one where the selection flips from plain
// hashing to skew-aware routing.
func TestPlannerSkewFlipUnderDeltas(t *testing.T) {
	const (
		n = 1200
		p = 16
	)
	srv := serve.New(serve.Config{DefaultP: p, MaxAnswers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	q, err := query.Parse("R(x,y),S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 0))
	if _, err := srv.Registry().Add("j2", relation.MatchingDatabase(rng, q, n)); err != nil {
		t.Fatal(err)
	}
	ds, _ := srv.Registry().Get("j2")

	engineAt := func() (served, scratch string) {
		t.Helper()
		out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "j2", Query: "R(x,y),S(y,z)"})
		pl, err := plan.Build(q, relation.CollectStats(ds.DB()), plan.Options{P: p})
		if err != nil {
			t.Fatal(err)
		}
		return out.Engine, pl.Engine.String()
	}
	served, scratch := engineAt()
	if served != scratch {
		t.Fatalf("version 0: served engine %q, from-scratch %q", served, scratch)
	}
	if strings.Contains(served, "skew") {
		t.Fatalf("matching data already selected %q", served)
	}

	flipped := false
	for batch := 0; batch < 24 && !flipped; batch++ {
		// Drift: 100 R-tuples and 100 S-tuples per batch, all on join
		// value y=1.
		app := serve.DeltaRequest{Appends: map[string][][]int{}}
		for i := 0; i < 100; i++ {
			app.Appends["R"] = append(app.Appends["R"], []int{rng.IntN(n) + 1, 1})
			app.Appends["S"] = append(app.Appends["S"], []int{1, rng.IntN(n) + 1})
		}
		var dr serve.DeltaResponse
		if code := postJSON(t, ts.URL+"/datasets/j2/delta", app, &dr); code != http.StatusOK {
			t.Fatalf("delta batch %d status %d", batch, code)
		}
		served, scratch = engineAt()
		if served != scratch {
			t.Fatalf("version %d: served engine %q diverges from from-scratch engine %q",
				dr.Version, served, scratch)
		}
		if strings.Contains(served, "skew") {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("heavy-hitter drift never flipped the engine to skew-aware routing")
	}
}

// TestServeConcurrentDeltasAndReads is the concurrency regression:
// ~100 goroutines interleave delta ingestion, warm continuous reads,
// cold queries, and metrics scrapes. Every writer asserts
// read-your-writes (a warm read after an acknowledged delta reflects
// at least that version), and the final warm answer must equal ground
// truth on the final state.
func TestServeConcurrentDeltasAndReads(t *testing.T) {
	const (
		n        = 40
		writers  = 20
		deltas   = 3 // per writer
		readers  = 50
		queriers = 20
	)
	srv, ts := newTestServer(t, serve.Config{DefaultP: 4, MaxAnswers: 100000}, n)
	q, err := query.ParseFamily("C3")
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/continuous", serve.ContinuousRequest{
		Name: "live", Dataset: "tri", Family: "C3",
	}, nil); code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+queriers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+1, 77))
			for d := 0; d < deltas; d++ {
				app := serve.DeltaRequest{Appends: map[string][][]int{}}
				for _, rel := range []string{"S1", "S2", "S3"} {
					app.Appends[rel] = append(app.Appends[rel],
						[]int{rng.IntN(n) + 1, rng.IntN(n) + 1})
				}
				body, _ := json.Marshal(app)
				resp, err := http.Post(ts.URL+"/datasets/tri/delta", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var dr serve.DeltaResponse
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("delta status %d", resp.StatusCode)
					return
				}
				// Read-your-writes: the acknowledged version is already
				// maintained.
				warm, err := http.Get(ts.URL + "/continuous/live")
				if err != nil {
					errs <- err
					return
				}
				var ans serve.ContinuousAnswers
				err = json.NewDecoder(warm.Body).Decode(&ans)
				warm.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if ans.Error != "" {
					errs <- fmt.Errorf("continuous query broken: %s", ans.Error)
					return
				}
				if ans.Version < dr.Version {
					errs <- fmt.Errorf("stale read: warm version %d after acknowledged delta %d",
						ans.Version, dr.Version)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var url string
			if r%5 == 0 {
				url = ts.URL + "/healthz"
			} else {
				url = ts.URL + "/continuous/live"
			}
			for i := 0; i < 4; i++ {
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s status %d", url, resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}(r)
	}
	for c := 0; c < queriers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(serve.QueryRequest{Dataset: "tri", Family: "C3"})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("cold query status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	ds, _ := srv.Registry().Get("tri")
	wantVersion := uint64(writers * deltas)
	if ds.Version() != wantVersion {
		t.Fatalf("final version %d, want %d", ds.Version(), wantVersion)
	}
	var ans serve.ContinuousAnswers
	if code := getJSON(t, ts.URL+"/continuous/live", &ans); code != http.StatusOK {
		t.Fatalf("final warm read status %d", code)
	}
	if ans.Version != wantVersion || ans.Error != "" {
		t.Fatalf("final warm state version %d err %q, want %d", ans.Version, ans.Error, wantVersion)
	}
	truth, err := core.GroundTruth(q, ds.DB())
	if err != nil {
		t.Fatal(err)
	}
	if !answersMatch(ans.Answers, truth) {
		t.Fatalf("final warm answers diverge from ground truth: %d vs %d tuples",
			len(ans.Answers), len(truth))
	}

	// Metrics moved as the workload demands.
	m := srv.Metrics()
	if got := m.DeltasTotal.Load(); got != int64(wantVersion) {
		t.Fatalf("DeltasTotal = %d, want %d", got, wantVersion)
	}
	if m.ContinuousReads.Load() < int64(writers*deltas) {
		t.Fatalf("ContinuousReads = %d, want ≥ %d", m.ContinuousReads.Load(), writers*deltas)
	}
	if m.MaintenanceBits.Load() <= 0 {
		t.Fatal("MaintenanceBits did not move")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	_, _ = prom.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("mpcserve_deltas_total %d", wantVersion),
		"mpcserve_continuous_queries 1",
		"mpcserve_continuous_staleness 0",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("healthz missing %q", want)
		}
	}
}
