package serve

// This file is the continuous-query surface of the service: a
// registered continuous query keeps a hypercube.Maintainer alive — the
// grid distribution of its dataset's relations on a resident loopback
// cluster plus the materialized answer — and every delta batch applied
// to the dataset maintains it synchronously, under the dataset's
// mutation lock. Reads (GET /continuous/{name}) are warm: they return
// the materialized answer without planning, shuffling, or joining
// anything. Maintainers run on the in-process loopback even when the
// service executes ad-hoc queries on a distributed pool: residency is
// the point, and pool sessions are per-connection, so a long-lived
// distribution would pin a connection per query for its lifetime.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/relation"
)

// contQuery is one registered continuous query.
type contQuery struct {
	name    string
	dataset string
	q       *query.Query
	p       int
	created time.Time

	// mu guards the maintainer (single-caller) and the version/error
	// state below.
	mu sync.Mutex
	m  *hypercube.Maintainer
	// version is the dataset version the materialized answer reflects.
	version uint64
	// err records a maintenance failure; the answer then lags the
	// dataset until the query is re-registered.
	err error
}

// cqRegistry is the server's continuous-query catalog.
type cqRegistry struct {
	mu        sync.RWMutex
	byName    map[string]*contQuery
	byDataset map[string][]*contQuery
}

// newCQRegistry returns an empty catalog.
func newCQRegistry() *cqRegistry {
	return &cqRegistry{
		byName:    make(map[string]*contQuery),
		byDataset: make(map[string][]*contQuery),
	}
}

// add inserts cq, failing on a duplicate name.
func (r *cqRegistry) add(cq *contQuery) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.byName[cq.name]; exists {
		return fmt.Errorf("serve: continuous query %s already registered", cq.name)
	}
	r.byName[cq.name] = cq
	r.byDataset[cq.dataset] = append(r.byDataset[cq.dataset], cq)
	return nil
}

// remove deletes the named query and returns it, or nil.
func (r *cqRegistry) remove(name string) *contQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	cq, ok := r.byName[name]
	if !ok {
		return nil
	}
	delete(r.byName, name)
	list := r.byDataset[cq.dataset]
	for i, c := range list {
		if c == cq {
			r.byDataset[cq.dataset] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return cq
}

// get returns the named query.
func (r *cqRegistry) get(name string) (*contQuery, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cq, ok := r.byName[name]
	return cq, ok
}

// onDataset returns the queries registered on the dataset, in
// name order (deterministic maintenance and listing order).
func (r *cqRegistry) onDataset(dataset string) []*contQuery {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]*contQuery(nil), r.byDataset[dataset]...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// names returns every registered name, sorted.
func (r *cqRegistry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for name := range r.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// count returns the number of registered queries.
func (r *cqRegistry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// maintainContinuous folds one applied delta into every continuous
// query on the dataset. The caller holds ds.mu, so maintenance
// observes versions in application order and a second delta cannot
// interleave. Effects are filtered to each query's atoms; a query
// whose relations the batch did not touch just advances its version.
func (s *Server) maintainContinuous(ds *Dataset, version uint64, effects map[string]relation.Effect) []MaintainedQuery {
	var out []MaintainedQuery
	for _, cq := range s.continuous.onDataset(ds.Name) {
		out = append(out, cq.maintain(s, version, effects))
	}
	return out
}

// maintain folds one delta's effects into this query's maintainer.
func (cq *contQuery) maintain(s *Server, version uint64, effects map[string]relation.Effect) MaintainedQuery {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	mq := MaintainedQuery{Name: cq.name}
	if cq.err != nil {
		// Already broken: don't advance the version, keep reporting.
		mq.Error = cq.err.Error()
		return mq
	}
	scoped := make(map[string]relation.Effect, len(effects))
	for name, eff := range effects {
		if cq.m.Fanout(name) > 0 && (len(eff.Added) > 0 || len(eff.Removed) > 0) {
			scoped[name] = eff
		}
	}
	if len(scoped) > 0 {
		rep, err := cq.m.ApplyDelta(scoped)
		if err != nil {
			cq.err = err
			mq.Error = err.Error()
			s.metrics.QueryErrors.Add(1)
			return mq
		}
		mq.AnswersAdded = rep.AnswersAdded
		mq.AnswersRemoved = rep.AnswersRemoved
		mq.Bits = rep.Bits
		mq.RoutedTuples = rep.RoutedTuples
		s.metrics.MaintenanceBits.Add(rep.Bits)
	}
	cq.version = version
	return mq
}

// staleness returns how many dataset versions the query's answer
// lags, given the dataset's current version.
func (cq *contQuery) staleness(dsVersion uint64) uint64 {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if dsVersion <= cq.version {
		return 0
	}
	return dsVersion - cq.version
}

// ContinuousRequest is the POST /continuous body.
type ContinuousRequest struct {
	// Name is the registry key for the new continuous query. Required.
	Name string `json:"name"`
	// Dataset names the registered dataset to maintain over. Required.
	Dataset string `json:"dataset"`
	// Query is conjunctive query text; exactly one of Query and Family
	// must be set.
	Query string `json:"query,omitempty"`
	// Family is a query family name (C3, L4, …).
	Family string `json:"family,omitempty"`
	// P is the number of simulated workers holding the distribution; 0
	// selects the service default.
	P int `json:"p,omitempty"`
	// Seed drives the maintainer's hash functions; 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
}

// ContinuousInfo describes one continuous query (registration reply
// and GET /continuous listing entry).
type ContinuousInfo struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Dataset is the maintained dataset.
	Dataset string `json:"dataset"`
	// Query is the canonical query text.
	Query string `json:"query"`
	// P is the worker count holding the distribution.
	P int `json:"p"`
	// Version is the dataset version the materialized answer reflects.
	Version uint64 `json:"version"`
	// DatasetVersion is the dataset's current version; it exceeds
	// Version only while the query is broken (see Error).
	DatasetVersion uint64 `json:"datasetVersion"`
	// AnswerCount is the materialized answer cardinality.
	AnswerCount int `json:"answerCount"`
	// TotalBits is the maintainer's lifetime communication: the cold
	// distribution plus every maintenance batch.
	TotalBits int64 `json:"totalBits"`
	// Error reports a maintenance failure, if any.
	Error string `json:"error,omitempty"`
}

// ContinuousAnswers is the GET /continuous/{name} reply: the warm
// materialized answer, no execution involved.
type ContinuousAnswers struct {
	ContinuousInfo
	// Vars is the output schema (query variable order of Answers).
	Vars []string `json:"vars"`
	// Answers holds at most maxAnswers tuples, sorted.
	Answers [][]int `json:"answers,omitempty"`
	// Truncated reports Answers holds fewer than AnswerCount tuples.
	Truncated bool `json:"truncated,omitempty"`
}

// info renders the query's summary. Callers must not hold cq.mu.
func (cq *contQuery) info(dsVersion uint64) ContinuousInfo {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	info := ContinuousInfo{
		Name:           cq.name,
		Dataset:        cq.dataset,
		Query:          cq.q.String(),
		P:              cq.p,
		Version:        cq.version,
		DatasetVersion: dsVersion,
		AnswerCount:    len(cq.m.Answers()),
		TotalBits:      cq.m.Stats().TotalBits(),
	}
	if cq.err != nil {
		info.Error = cq.err.Error()
	}
	return info
}

// handleContinuous is GET (list) and POST (register) /continuous.
func (s *Server) handleContinuous(w http.ResponseWriter, r *http.Request) {
	if _, handled := s.authorize(w, r); handled {
		return
	}
	switch r.Method {
	case http.MethodGet:
		out := []ContinuousInfo{}
		for _, name := range s.continuous.names() {
			cq, ok := s.continuous.get(name)
			if !ok {
				continue
			}
			out = append(out, cq.info(s.datasetVersion(cq.dataset)))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		s.handleContinuousRegister(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// handleContinuousRegister is POST /continuous: cold-distribute the
// query's relations on a resident loopback cluster and register the
// maintainer.
func (s *Server) handleContinuousRegister(w http.ResponseWriter, r *http.Request) {
	var req ContinuousRequest
	if err := decodeJSONBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "name is required")
		return
	}
	q, err := resolveRequestQuery(req.Query, req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := req.P
	if p == 0 {
		p = s.cfg.DefaultP
	}
	if p < 1 || p > s.cfg.MaxP {
		writeError(w, http.StatusBadRequest, "p = %d outside [1, %d]", p, s.cfg.MaxP)
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "dataset is required")
		return
	}
	ds, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (registered: %v)", req.Dataset, s.registry.Names())
		return
	}
	if s.continuous.count() >= s.cfg.MaxContinuous {
		writeError(w, http.StatusServiceUnavailable,
			"continuous-query limit %d reached; delete one first", s.cfg.MaxContinuous)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}

	// Registration happens under the dataset lock: the cold
	// distribution sees one version, and no delta can slip between
	// that snapshot and the subscription.
	ds.mu.Lock()
	sn := ds.Snapshot()
	view, err := sn.Bind(q)
	if err != nil {
		ds.mu.Unlock()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := hypercube.NewMaintainer(q, view, p, hypercube.Options{Seed: seed})
	if err != nil {
		ds.mu.Unlock()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	cq := &contQuery{
		name:    req.Name,
		dataset: ds.Name,
		q:       q,
		p:       p,
		created: time.Now(),
		m:       m,
		version: sn.Version,
	}
	if err := s.continuous.add(cq); err != nil {
		ds.mu.Unlock()
		m.Close()
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	ds.mu.Unlock()
	s.metrics.ContinuousRegistered.Add(1)
	writeJSON(w, http.StatusCreated, cq.info(sn.Version))
}

// handleContinuousOne is GET (warm answers) and DELETE /continuous/{name}.
func (s *Server) handleContinuousOne(w http.ResponseWriter, r *http.Request) {
	if _, handled := s.authorize(w, r); handled {
		return
	}
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodGet:
		cq, ok := s.continuous.get(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown continuous query %q (registered: %v)", name, s.continuous.names())
			return
		}
		maxAnswers := s.cfg.MaxAnswers
		cq.mu.Lock()
		all := cq.m.Answers()
		resp := ContinuousAnswers{Vars: cq.q.Vars()}
		resp.ContinuousInfo = ContinuousInfo{
			Name:           cq.name,
			Dataset:        cq.dataset,
			Query:          cq.q.String(),
			P:              cq.p,
			Version:        cq.version,
			DatasetVersion: s.datasetVersion(cq.dataset),
			AnswerCount:    len(all),
			TotalBits:      cq.m.Stats().TotalBits(),
		}
		if cq.err != nil {
			resp.Error = cq.err.Error()
		}
		answers := make([][]int, 0, min(maxAnswers, len(all)))
		for i, t := range all {
			if i >= maxAnswers {
				break
			}
			answers = append(answers, []int(t))
		}
		cq.mu.Unlock()
		resp.Answers = answers
		resp.Truncated = len(answers) < resp.AnswerCount
		s.metrics.ContinuousReads.Add(1)
		writeJSON(w, http.StatusOK, resp)
	case http.MethodDelete:
		cq := s.continuous.remove(name)
		if cq == nil {
			writeError(w, http.StatusNotFound, "unknown continuous query %q", name)
			return
		}
		cq.mu.Lock()
		cq.m.Close()
		cq.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE required")
	}
}

// datasetVersion returns the named dataset's current version (0 if it
// vanished, which Registry does not allow).
func (s *Server) datasetVersion(name string) uint64 {
	ds, ok := s.registry.Get(name)
	if !ok {
		return 0
	}
	return ds.Version()
}

// writeContinuousProm renders the render-time continuous-query gauges:
// the registered count and the summed staleness (dataset versions the
// materialized answers lag — 0 unless a maintainer broke, because
// maintenance is synchronous under the dataset lock).
func (s *Server) writeContinuousProm(w io.Writer) {
	var stale uint64
	names := s.continuous.names()
	for _, name := range names {
		cq, ok := s.continuous.get(name)
		if !ok {
			continue
		}
		stale += cq.staleness(s.datasetVersion(cq.dataset))
	}
	fmt.Fprintf(w, "# HELP mpcserve_continuous_queries Registered continuous queries.\n# TYPE mpcserve_continuous_queries gauge\nmpcserve_continuous_queries %d\n", len(names))
	fmt.Fprintf(w, "# HELP mpcserve_continuous_staleness Summed dataset versions continuous answers lag behind.\n# TYPE mpcserve_continuous_staleness gauge\nmpcserve_continuous_staleness %d\n", stale)
}

// decodeJSONBody decodes a bounded JSON request body into v.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		return fmt.Errorf("bad JSON body: %w", err)
	}
	return nil
}
