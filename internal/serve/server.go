// Package serve is the long-running multi-query service layer of the
// reproduction: cmd/mpcserve in library form.
//
// The Beame–Koutris–Suciu MPC model is about answering many
// conjunctive queries on one shared cluster under a per-worker load
// budget, and everything below this package is per-query: parse, plan,
// shuffle, join, gather. Serve adds the amortization layer a sustained
// workload needs:
//
//   - a named-dataset Registry keeps relations resident and columnar
//     across requests, with the statistics catalog memoized on first
//     use (relation.Database.Stats);
//   - a PlanCache holds compiled plan.Plans under plan.CacheKey
//     fingerprints, so repeated queries skip the LP solve, share
//     rounding, and cost model entirely — Plans are immutable and
//     concurrency-safe, so one cached plan serves any number of
//     simultaneous executions;
//   - a Gate admission-controls executions: a bounded worker pool
//     (slots) plus a global predicted-load budget in tuples, FIFO to
//     avoid starvation;
//   - Metrics counts queries, cache hit rates, and per-round shuffle
//     bits, rendered in Prometheus text format.
//
// Datasets are versioned, not frozen: POST /datasets/{name}/delta
// ingests a batch of appends and deletes copy-on-write, maintaining
// the statistics catalog incrementally from the delta's touched
// occurrences, and POST /continuous registers a continuous query whose
// hypercube distribution and materialized answer are maintained under
// every delta — GET /continuous/{name} then reads the warm answer
// without executing anything.
//
// The HTTP surface is JSON: POST /query plans (or cache-hits) and
// executes a query against a named dataset and returns answers plus
// the EXPLAIN report and round statistics; GET /datasets lists the
// registry; POST /datasets registers a dataset from inline CSV or a
// generator spec; POST /datasets/{name}/delta applies a delta batch
// and maintains continuous queries; GET/POST /continuous lists and
// registers continuous queries, GET/DELETE /continuous/{name} reads
// warm answers and deregisters; GET /healthz serves liveness plus the
// metrics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// DefaultP is the server count used when a query request does not
	// set p. ≤ 0 selects 64.
	DefaultP int
	// MaxP bounds the per-query p (each simulated worker is a
	// goroutine, so p is a real resource). ≤ 0 selects 1024.
	MaxP int
	// CapFactor is the planner budget constant c of c·N/p^{1−ε}
	// forwarded to plan.Build; ≤ 0 selects the planner default.
	CapFactor float64
	// MaxConcurrent is the admission gate's worker-pool size. ≤ 0
	// selects 128.
	MaxConcurrent int
	// LoadBudgetTuples is the gate's global predicted-load budget; ≤ 0
	// disables the load bound (slots still bound concurrency).
	LoadBudgetTuples int64
	// CacheSize is the plan cache capacity; ≤ 0 selects 128.
	CacheSize int
	// MaxAnswers caps answers returned per response when the request
	// does not set its own cap. ≤ 0 selects 100.
	MaxAnswers int
	// WorkerAddrs, when non-empty, executes every query against the
	// distributed TCP worker pool at these mpcworker addresses
	// (internal/dist) instead of the in-process loopback. The pool
	// size replaces DefaultP; requests must leave p unset or set it to
	// the pool size. Each execution dials its own session, so
	// concurrent queries stay isolated on shared worker processes.
	WorkerAddrs []string
	// SpareAddrs lists standby mpcworker addresses. A worker that dies
	// mid-query is replaced by a spare and the query resumes; the
	// background pool registry also promotes spares for members that
	// fail heartbeat probes, so the service heals instead of returning
	// 502 until an operator intervenes. Only meaningful with
	// WorkerAddrs.
	SpareAddrs []string
	// MaxReplacements bounds worker replacements per query execution;
	// ≤ 0 selects the pool size.
	MaxReplacements int
	// MaxContinuous bounds the registered continuous queries (each one
	// keeps a maintained grid distribution resident). ≤ 0 selects 16.
	MaxContinuous int
	// Tenants, when non-empty, switches the service to multi-tenant
	// mode: data-plane endpoints (/query, /datasets, deltas,
	// /continuous) require one of the configured API keys, and each
	// tenant is held to its own quotas (see TenantConfig). The operator
	// surface (/healthz, /metrics, /ops, /trace, /ui) stays open.
	// Invalid configurations (empty or duplicate names/keys) panic in
	// New; validate with NewTenants first when in doubt.
	Tenants []TenantConfig
	// TraceCapacity is the in-memory completed-trace ring size backing
	// GET /trace. ≤ 0 selects 256.
	TraceCapacity int
	// Now is the clock the tenant rate limiters read; nil selects
	// time.Now. Tests inject a fixed clock for deterministic 429
	// counts.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.DefaultP <= 0 {
		c.DefaultP = 64
	}
	if c.MaxP <= 0 {
		c.MaxP = 1024
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 128
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxAnswers <= 0 {
		c.MaxAnswers = 100
	}
	if c.MaxContinuous <= 0 {
		c.MaxContinuous = 16
	}
	if c.TraceCapacity <= 0 {
		c.TraceCapacity = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if len(c.WorkerAddrs) > 0 {
		// With a worker pool, the cluster size is the pool size; MaxP
		// must admit it or every default-p request would be rejected.
		c.DefaultP = len(c.WorkerAddrs)
		if c.MaxP < c.DefaultP {
			c.MaxP = c.DefaultP
		}
	}
	return c
}

// Server is the shared state of the query service. Create one with
// New, register datasets, and mount Handler on an http.Server.
type Server struct {
	cfg        Config
	registry   *Registry
	cache      *PlanCache
	gate       *Gate
	metrics    *Metrics
	pool       *dist.Registry
	continuous *cqRegistry
	tenants    *Tenants
	traces     *trace.Ring
	queryID    atomic.Uint64
	started    time.Time
}

// New returns a Server with an empty registry and cold caches. An
// invalid Config.Tenants panics (see that field).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		registry:   NewRegistry(),
		cache:      NewPlanCache(cfg.CacheSize),
		gate:       NewGate(cfg.MaxConcurrent, cfg.LoadBudgetTuples),
		metrics:    &Metrics{},
		continuous: newCQRegistry(),
		traces:     trace.NewRing(cfg.TraceCapacity),
		started:    time.Now(),
	}
	if len(cfg.WorkerAddrs) > 0 {
		s.pool = dist.NewRegistry(cfg.WorkerAddrs, cfg.SpareAddrs)
	}
	if len(cfg.Tenants) > 0 {
		ts, err := NewTenants(cfg.Tenants)
		if err != nil {
			panic(err)
		}
		s.tenants = ts
	}
	return s
}

// Registry returns the dataset registry (for preloading at startup).
func (s *Server) Registry() *Registry { return s.registry }

// Metrics returns the server's counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

// PlanCache returns the compiled-plan cache.
func (s *Server) PlanCache() *PlanCache { return s.cache }

// Pool returns the worker-pool membership registry, or nil when the
// service executes on the in-process loopback. cmd/mpcserve mounts
// Pool().Run as its background heartbeat loop.
func (s *Server) Pool() *dist.Registry { return s.pool }

// Tenants returns the tenant directory, or nil in single-tenant open
// mode.
func (s *Server) Tenants() *Tenants { return s.tenants }

// Traces returns the in-memory trace ring. Executions are added on
// admission, so in-flight queries are visible (with open spans)
// before they finish.
func (s *Server) Traces() *trace.Ring { return s.traces }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/datasets/{name}/delta", s.handleDatasetDelta)
	mux.HandleFunc("/continuous", s.handleContinuous)
	mux.HandleFunc("/continuous/{name}", s.handleContinuousOne)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleHealthz)
	mux.HandleFunc("/trace", s.handleTraceList)
	mux.HandleFunc("/trace/{queryID}", s.handleTraceOne)
	mux.HandleFunc("/ops", s.handleOps)
	mux.HandleFunc("/ui", s.handleUI)
	return mux
}

// authorize resolves the request's tenant in multi-tenant mode. It
// writes the 401 itself and reports handled=true on failure; in
// single-tenant open mode it returns (nil, false).
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	if s.tenants == nil {
		return nil, false
	}
	t, err := s.tenants.Authenticate(r)
	if err != nil {
		writeError(w, http.StatusUnauthorized, "%v", err)
		return nil, true
	}
	return t, false
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// Dataset names the registered dataset to run against. Required.
	Dataset string `json:"dataset"`
	// Query is conjunctive query text; exactly one of Query and Family
	// must be set.
	Query string `json:"query,omitempty"`
	// Family is a query family name (C3, L4, SP3, …).
	Family string `json:"family,omitempty"`
	// Program is Datalog program text (rules, optional '?-' goal); it
	// selects the stratified semi-naive evaluator instead of the
	// single-query planner. Query text containing ':-' or '?-' is
	// routed the same way.
	Program string `json:"program,omitempty"`
	// P is the number of servers; 0 selects the service default.
	P int `json:"p,omitempty"`
	// Epsilon is the space exponent as a rational ("1/2"); empty
	// selects the query's own one-round exponent.
	Epsilon string `json:"eps,omitempty"`
	// Seed drives the run's hash functions; 0 selects 1.
	Seed uint64 `json:"seed,omitempty"`
	// MaxAnswers caps the answers in the response; 0 selects the
	// service default, negative returns the count only.
	MaxAnswers int `json:"maxAnswers,omitempty"`
}

// QueryResponse is the POST /query reply.
type QueryResponse struct {
	// QueryID identifies this execution's trace; GET /trace/{queryID}
	// returns the full per-round, per-worker span tree.
	QueryID string `json:"queryID"`
	// Tenant is the authenticated tenant's name (multi-tenant mode
	// only).
	Tenant string `json:"tenant,omitempty"`
	// Dataset echoes the request.
	Dataset string `json:"dataset"`
	// Query is the canonical text of the executed query.
	Query string `json:"query"`
	// P is the number of servers used.
	P int `json:"p"`
	// Engine names the executed strategy.
	Engine string `json:"engine"`
	// Rounds is the number of communication rounds.
	Rounds int `json:"rounds"`
	// Fingerprint is the plan's cache identity.
	Fingerprint string `json:"fingerprint"`
	// PlanCached reports whether the plan came from the cache.
	PlanCached bool `json:"planCached"`
	// StatsCached reports whether the dataset statistics were already
	// memoized (always true after the dataset's first planned query).
	StatsCached bool `json:"statsCached"`
	// Explain is the plan's EXPLAIN report.
	Explain string `json:"explain"`
	// Vars is the output schema (query variable order of Answers).
	Vars []string `json:"vars"`
	// Iterations is the number of semi-naive fixpoint iterations
	// (Datalog programs with recursion only).
	Iterations int `json:"iterations,omitempty"`
	// AnswerCount is the full answer cardinality.
	AnswerCount int `json:"answerCount"`
	// Answers holds at most MaxAnswers tuples, sorted.
	Answers [][]int `json:"answers,omitempty"`
	// Truncated reports Answers holds fewer than AnswerCount tuples.
	Truncated bool `json:"truncated,omitempty"`
	// MaxLoadTuples is the observed per-worker per-round maximum load.
	MaxLoadTuples int64 `json:"maxLoadTuples"`
	// TotalBits is the total communication of the run.
	TotalBits int64 `json:"totalBits"`
	// PerRoundBits lists each round's received bits.
	PerRoundBits []int64 `json:"perRoundBits"`
	// CapExceeded reports a broken receive budget (informational).
	CapExceeded bool `json:"capExceeded"`
	// WorkerReplacements counts workers replaced mid-query by the
	// recovery policy (distributed pool only; 0 on a healthy run).
	WorkerReplacements int `json:"workerReplacements,omitempty"`
	// ElapsedMs is the wall-clock execution time in milliseconds.
	ElapsedMs float64 `json:"elapsedMs"`
}

// errorReply is the JSON error envelope.
type errorReply struct {
	// Error is the human-readable failure.
	Error string `json:"error"`
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders a JSON error.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorReply{Error: fmt.Sprintf(format, args...)})
}

// handleQuery is POST /query: authenticate, rate-limit, resolve, plan
// (cache-first), admit under the tenant and global quotas, execute
// with tracing, report.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ten, handled := s.authorize(w, r)
	if handled {
		return
	}
	if ten != nil {
		// The rate quota is spent before the body is even decoded: a
		// throttled tenant costs the service one bucket probe, nothing
		// more.
		if qe := ten.AdmitRate(s.cfg.Now()); qe != nil {
			s.metrics.QueriesRejected.Add(1)
			writeQuotaError(w, qe)
			return
		}
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	if req.Program != "" || datalog.IsDatalog(req.Query) {
		s.handleDatalogQuery(w, r, ten, req)
		return
	}
	q, err := resolveRequestQuery(req.Query, req.Family)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := req.P
	if p == 0 {
		p = s.cfg.DefaultP
	}
	if p < 1 {
		writeError(w, http.StatusBadRequest, "p = %d, need ≥ 1", p)
		return
	}
	if p > s.cfg.MaxP {
		writeError(w, http.StatusBadRequest, "p = %d exceeds server limit %d", p, s.cfg.MaxP)
		return
	}
	if len(s.cfg.WorkerAddrs) > 0 && p != len(s.cfg.WorkerAddrs) {
		writeError(w, http.StatusBadRequest,
			"p = %d, but this service executes on a fixed pool of %d workers (leave p unset)",
			p, len(s.cfg.WorkerAddrs))
		return
	}
	var eps *big.Rat
	if req.Epsilon != "" {
		eps = new(big.Rat)
		if _, ok := eps.SetString(req.Epsilon); !ok {
			writeError(w, http.StatusBadRequest, "cannot parse eps %q as a rational", req.Epsilon)
			return
		}
		if eps.Sign() < 0 || eps.Cmp(big.NewRat(1, 1)) >= 0 {
			writeError(w, http.StatusBadRequest, "eps = %s outside [0,1)", eps.RatString())
			return
		}
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "dataset is required")
		return
	}
	ds, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (registered: %v)", req.Dataset, s.registry.Names())
		return
	}
	// One snapshot serves the whole request: the bind, the cache key's
	// version, and the statistics all describe the same dataset state,
	// even while deltas land concurrently.
	sn := ds.Snapshot()
	view, err := sn.Bind(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Plan: cache-first under the (query, dataset, version, p, ε)
	// fingerprint — a delta bumps the version, so stale-statistics
	// plans age out of the cache by key instead of by invalidation.
	opts := plan.Options{P: p, Epsilon: eps, CapFactor: s.cfg.CapFactor}
	key := plan.CacheKey{Query: q, Dataset: ds.Name, Version: sn.Version, Opts: opts}.Fingerprint()
	pl, planCached := s.cache.Get(key)
	statsCached := ds.statsSeen.Load()
	if planCached {
		s.metrics.PlanCacheHits.Add(1)
	} else {
		s.metrics.PlanCacheMisses.Add(1)
		stats, hit := sn.Stats()
		if hit {
			s.metrics.StatsCacheHits.Add(1)
		} else {
			s.metrics.StatsCacheMisses.Add(1)
		}
		statsCached = hit
		pl, err = plan.Build(q, queryScopedStats(stats, q), opts)
		if err != nil {
			s.metrics.QueryErrors.Add(1)
			writeError(w, http.StatusUnprocessableEntity, "planning failed: %v", err)
			return
		}
		s.cache.Put(key, pl)
	}

	// Admission: predicted per-worker load × workers ≈ tuples this
	// execution materializes across the simulated cluster. The tenant
	// quota rejects immediately (429); the global gate queues (FIFO).
	cost := int64(pl.Cost.LoadTuples*float64(p)) + 1
	if ten != nil {
		if qe := ten.AdmitLoad(cost); qe != nil {
			s.metrics.QueriesRejected.Add(1)
			writeQuotaError(w, qe)
			return
		}
	}
	if err := s.gate.Acquire(r.Context(), cost); err != nil {
		if ten != nil {
			ten.ReleaseLoad(cost)
		}
		s.metrics.QueriesRejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "admission rejected: %v", err)
		return
	}
	s.metrics.InFlight.Add(1)
	if ten != nil {
		ten.InFlight.Add(1)
	}
	release := func() {
		s.metrics.InFlight.Add(-1)
		s.gate.Release(cost)
		if ten != nil {
			ten.InFlight.Add(-1)
			ten.ReleaseLoad(cost)
		}
	}

	// Every admitted execution is traced; the ring holds the live trace
	// from here on, so /trace and the console see in-flight queries.
	qn := s.queryID.Add(1)
	qid := fmt.Sprintf("q-%d", qn)
	tc := trace.New(qid, qn)
	tc.Query = q.String()
	tc.Engine = pl.Engine.String()
	tc.P = p
	tc.PredictedLoadTuples = pl.Cost.LoadTuples
	tc.BudgetLoadTuples = int64(pl.BudgetLoad)
	if ten != nil {
		tc.Tenant = ten.Name()
	}
	s.traces.Add(tc)

	start := time.Now()
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	execOpts := plan.ExecOptions{Seed: seed, Trace: tc}
	if s.pool != nil {
		// One dialed session per execution: the per-connection stores on
		// the shared mpcworker processes isolate concurrent queries.
		tr, derr := s.dialPool(r.Context())
		if derr != nil {
			s.metrics.QueryErrors.Add(1)
			if ten != nil {
				ten.QueryErrors.Add(1)
			}
			release()
			tc.Event(tc.Root(), "error", -1, derr.Error())
			tc.Finish()
			writeError(w, http.StatusBadGateway, "worker pool unavailable: %v", derr)
			return
		}
		defer tr.Close()
		execOpts.Transport = tr
		execOpts.Context = r.Context()
		execOpts.Recovery = dist.RecoveryOptions{
			Enabled:         true,
			MaxReplacements: s.cfg.MaxReplacements,
			Spares:          s.pool.Spares(),
		}
		s.metrics.DistributedQueries.Add(1)
	}
	res, err := pl.Execute(view, execOpts)
	elapsed := time.Since(start)
	release()
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		if ten != nil {
			ten.QueryErrors.Add(1)
		}
		tc.Event(tc.Root(), "error", -1, err.Error())
		tc.Finish()
		writeError(w, http.StatusInternalServerError, "execution failed: %v", err)
		return
	}
	tc.Replacements = res.Replacements
	tc.Finish()
	s.metrics.QueriesServed.Add(1)
	if ten != nil {
		ten.QueriesServed.Add(1)
	}
	s.metrics.RecordExecution(res.Stats)
	if res.Replacements > 0 {
		s.metrics.WorkerReplacements.Add(int64(res.Replacements))
	}

	maxAnswers := req.MaxAnswers
	if maxAnswers == 0 {
		maxAnswers = s.cfg.MaxAnswers
	}
	if maxAnswers < 0 {
		maxAnswers = 0
	}
	answers := make([][]int, 0, min(maxAnswers, len(res.Answers)))
	for i, t := range res.Answers {
		if i >= maxAnswers {
			break
		}
		answers = append(answers, []int(t))
	}
	s.metrics.AnswersReturned.Add(int64(len(answers)))
	tenantName := ""
	if ten != nil {
		ten.AnswersReturned.Add(int64(len(answers)))
		tenantName = ten.Name()
	}
	perRound := make([]int64, 0, len(res.Stats.Rounds))
	for _, rs := range res.Stats.Rounds {
		perRound = append(perRound, rs.TotalBits)
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		QueryID:            qid,
		Tenant:             tenantName,
		Dataset:            ds.Name,
		Query:              q.String(),
		P:                  p,
		Engine:             res.Engine.String(),
		Rounds:             res.Rounds,
		Fingerprint:        key,
		PlanCached:         planCached,
		StatsCached:        statsCached,
		Explain:            pl.Explain(),
		Vars:               q.Vars(),
		AnswerCount:        len(res.Answers),
		Answers:            answers,
		Truncated:          len(answers) < len(res.Answers),
		MaxLoadTuples:      res.Stats.MaxLoadTuples(),
		TotalBits:          res.Stats.TotalBits(),
		PerRoundBits:       perRound,
		CapExceeded:        res.CapExceeded,
		WorkerReplacements: res.Replacements,
		ElapsedMs:          float64(elapsed.Microseconds()) / 1000,
	})
}

// dialPool dials a session against the pool's current membership. A
// dial failure usually means a member died since the last heartbeat:
// reconcile the registry immediately (promoting a spare into the dead
// slot) and retry once before giving up, so a single crashed worker
// costs one repaired request instead of failing every query until the
// background loop catches up.
func (s *Server) dialPool(ctx context.Context) (*dist.TCP, error) {
	tr, err := dist.DialTCP(ctx, s.pool.Members())
	if err == nil {
		return tr, nil
	}
	if n := s.pool.Reconcile(ctx); n > 0 {
		s.metrics.PoolRepairs.Add(int64(n))
	}
	return dist.DialTCP(ctx, s.pool.Members())
}

// DatasetRequest is the POST /datasets body: a name plus exactly one
// of CSV (inline relation texts) or Generator.
type DatasetRequest struct {
	// Name is the registry key for the new dataset. Required.
	Name string `json:"name"`
	// CSV maps relation name → CSV text (header then integer rows).
	CSV map[string]string `json:"csv,omitempty"`
	// Generator describes a synthetic dataset.
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// DatasetInfo is one dataset in the GET /datasets listing.
type DatasetInfo struct {
	// Name is the registry key.
	Name string `json:"name"`
	// DomainN is the domain size [n].
	DomainN int `json:"domainN"`
	// Version is the dataset's delta version (applied batch count).
	Version uint64 `json:"version"`
	// Relations lists the resident relations.
	Relations []RelationInfo `json:"relations"`
	// StatsCollected reports whether statistics are memoized.
	StatsCollected bool `json:"statsCollected"`
}

// RelationInfo summarizes one resident relation.
type RelationInfo struct {
	// Name is the relation symbol.
	Name string `json:"name"`
	// Arity is the column count.
	Arity int `json:"arity"`
	// Tuples is the cardinality.
	Tuples int `json:"tuples"`
}

// handleDatasets is GET (list) and POST (register) /datasets. In
// multi-tenant mode a registration books the dataset's estimated
// bytes against the registering tenant's resident-bytes quota.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	ten, handled := s.authorize(w, r)
	if handled {
		return
	}
	switch r.Method {
	case http.MethodGet:
		var out []DatasetInfo
		for _, name := range s.registry.Names() {
			ds, _ := s.registry.Get(name)
			out = append(out, s.describe(ds))
		}
		if out == nil {
			out = []DatasetInfo{}
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req DatasetRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON body: %v", err)
			return
		}
		var db *relation.Database
		var err error
		switch {
		case len(req.CSV) > 0 && req.Generator != nil:
			writeError(w, http.StatusBadRequest, "use csv or generator, not both")
			return
		case len(req.CSV) > 0:
			db, err = DatabaseFromCSV(req.CSV)
		case req.Generator != nil:
			db, err = Generate(*req.Generator)
		default:
			writeError(w, http.StatusBadRequest, "one of csv or generator is required")
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		bytes := DatasetBytes(db)
		if ten != nil {
			if qe := ten.AdmitBytes(bytes); qe != nil {
				writeQuotaError(w, qe)
				return
			}
		}
		ds, err := s.registry.Add(req.Name, db)
		if err != nil {
			if ten != nil {
				ten.ReleaseBytes(bytes)
			}
			code := http.StatusBadRequest
			if errors.Is(err, ErrDuplicateDataset) {
				code = http.StatusConflict
			}
			writeError(w, code, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, s.describe(ds))
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// describe renders a dataset summary of its current snapshot.
func (s *Server) describe(ds *Dataset) DatasetInfo {
	sn := ds.Snapshot()
	info := DatasetInfo{
		Name:           ds.Name,
		DomainN:        sn.DB.N,
		Version:        sn.Version,
		StatsCollected: ds.statsSeen.Load(),
	}
	for _, name := range sn.DB.Names() {
		rel, _ := sn.DB.Relation(name)
		info.Relations = append(info.Relations, RelationInfo{
			Name:   name,
			Arity:  rel.Arity(),
			Tuples: rel.Size(),
		})
	}
	return info
}

// handleHealthz is GET /healthz: liveness plus the full metric set in
// Prometheus text format.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# mpcserve up %.0fs, datasets %d, cached plans %d/%d\n",
		time.Since(s.started).Seconds(), len(s.registry.Names()), s.cache.Len(), s.cache.Capacity())
	s.metrics.WriteProm(w)
	s.writeContinuousProm(w)
	if s.tenants != nil {
		s.tenants.WriteProm(w)
	}
}

// resolveRequestQuery parses the query/family pair of a request.
func resolveRequestQuery(queryStr, familyStr string) (*query.Query, error) {
	switch {
	case queryStr != "" && familyStr != "":
		return nil, fmt.Errorf("use query or family, not both")
	case queryStr != "":
		return query.Parse(queryStr)
	case familyStr != "":
		return query.ParseFamily(familyStr)
	default:
		return nil, fmt.Errorf("one of query or family is required")
	}
}

// queryScopedStats restricts a dataset catalog to the query's atoms,
// so budgets (Σ|S_j|) see the same totals cmd/mpcrun computes over an
// exactly-matching database.
func queryScopedStats(stats *relation.Stats, q *query.Query) *relation.Stats {
	scoped := &relation.Stats{Relations: make(map[string]*relation.RelationStats, q.NumAtoms())}
	for _, a := range q.Atoms {
		if rs := stats.Relation(a.Name); rs != nil {
			scoped.Relations[a.Name] = rs
		}
	}
	return scoped
}
