package serve_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/serve"
)

// startWorkerPool spins up n in-process TCP worker listeners (the
// cmd/mpcworker serving path) and returns their addresses.
func startWorkerPool(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln)
	}
	return addrs
}

// TestWorkerPoolExecution: a server configured with WorkerAddrs
// executes queries on the remote pool — answers identical to ground
// truth, the distributed counter ticks, and concurrent queries share
// the pool safely (per-execution sessions).
func TestWorkerPoolExecution(t *testing.T) {
	addrs := startWorkerPool(t, 3)
	// MaxP below the pool size must be reconciled by the config
	// defaults, not reject every request.
	srv, ts := newTestServer(t, serve.Config{WorkerAddrs: addrs, MaxP: 1}, 200)
	truth := triangleTruth(t, srv)

	out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3", MaxAnswers: -1})
	if out.P != 3 {
		t.Fatalf("p = %d, want pool size 3", out.P)
	}
	if out.AnswerCount != len(truth) {
		t.Fatalf("%d answers, ground truth %d", out.AnswerCount, len(truth))
	}
	if got := srv.Metrics().DistributedQueries.Load(); got != 1 {
		t.Fatalf("DistributedQueries = %d, want 1", got)
	}

	// Concurrent queries: isolated sessions on the shared processes.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3"})
			if out.AnswerCount != len(truth) {
				t.Errorf("concurrent query: %d answers, want %d", out.AnswerCount, len(truth))
			}
		}()
	}
	wg.Wait()
	if got := srv.Metrics().DistributedQueries.Load(); got != 9 {
		t.Fatalf("DistributedQueries = %d, want 9", got)
	}
}

// TestWorkerPoolRejectsMismatchedP: with a fixed pool, a request
// asking for a different p is a client error, not a silent resize.
func TestWorkerPoolRejectsMismatchedP(t *testing.T) {
	addrs := startWorkerPool(t, 2)
	_, ts := newTestServer(t, serve.Config{WorkerAddrs: addrs}, 60)
	body := strings.NewReader(`{"dataset":"tri","family":"C3","p":16}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "fixed pool") {
		t.Fatalf("error %q does not explain the fixed pool", e.Error)
	}
}

// TestWorkerPoolUnavailable: a dead pool surfaces as 502, not a hang
// or a fallback to in-process execution.
func TestWorkerPoolUnavailable(t *testing.T) {
	// Reserve an address and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	_, ts := newTestServer(t, serve.Config{WorkerAddrs: []string{dead}}, 60)
	body := strings.NewReader(`{"dataset":"tri","family":"C3"}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}
