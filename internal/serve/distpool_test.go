package serve_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/serve"
)

// startWorkerPool spins up n in-process TCP worker listeners (the
// cmd/mpcworker serving path) and returns their addresses.
func startWorkerPool(t *testing.T, n int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln)
	}
	return addrs
}

// TestWorkerPoolExecution: a server configured with WorkerAddrs
// executes queries on the remote pool — answers identical to ground
// truth, the distributed counter ticks, and concurrent queries share
// the pool safely (per-execution sessions).
func TestWorkerPoolExecution(t *testing.T) {
	addrs := startWorkerPool(t, 3)
	// MaxP below the pool size must be reconciled by the config
	// defaults, not reject every request.
	srv, ts := newTestServer(t, serve.Config{WorkerAddrs: addrs, MaxP: 1}, 200)
	truth := triangleTruth(t, srv)

	out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3", MaxAnswers: -1})
	if out.P != 3 {
		t.Fatalf("p = %d, want pool size 3", out.P)
	}
	if out.AnswerCount != len(truth) {
		t.Fatalf("%d answers, ground truth %d", out.AnswerCount, len(truth))
	}
	if got := srv.Metrics().DistributedQueries.Load(); got != 1 {
		t.Fatalf("DistributedQueries = %d, want 1", got)
	}

	// Concurrent queries: isolated sessions on the shared processes.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3"})
			if out.AnswerCount != len(truth) {
				t.Errorf("concurrent query: %d answers, want %d", out.AnswerCount, len(truth))
			}
		}()
	}
	wg.Wait()
	if got := srv.Metrics().DistributedQueries.Load(); got != 9 {
		t.Fatalf("DistributedQueries = %d, want 9", got)
	}
}

// TestWorkerPoolRejectsMismatchedP: with a fixed pool, a request
// asking for a different p is a client error, not a silent resize.
func TestWorkerPoolRejectsMismatchedP(t *testing.T) {
	addrs := startWorkerPool(t, 2)
	_, ts := newTestServer(t, serve.Config{WorkerAddrs: addrs}, 60)
	body := strings.NewReader(`{"dataset":"tri","family":"C3","p":16}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "fixed pool") {
		t.Fatalf("error %q does not explain the fixed pool", e.Error)
	}
}

// killableWorker is one worker listener whose death can be forced
// synchronously: kill closes the listener and every accepted session
// connection, the way a SIGKILLed mpcworker process disappears.
type killableWorker struct {
	ln     net.Listener
	cancel context.CancelFunc
	mu     sync.Mutex
	conns  []net.Conn
	dead   bool
}

// startKillableWorker starts one worker listener and returns it with
// its address.
func startKillableWorker(t *testing.T) (*killableWorker, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &killableWorker{ln: ln, cancel: cancel}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			w.mu.Lock()
			if w.dead {
				w.mu.Unlock()
				c.Close()
				continue
			}
			w.conns = append(w.conns, c)
			w.mu.Unlock()
			go dist.ServeConn(ctx, c)
		}
	}()
	t.Cleanup(w.kill)
	return w, ln.Addr().String()
}

// kill takes the worker down hard.
func (w *killableWorker) kill() {
	w.mu.Lock()
	if w.dead {
		w.mu.Unlock()
		return
	}
	w.dead = true
	conns := w.conns
	w.conns = nil
	w.mu.Unlock()
	w.cancel()
	w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// TestWorkerPoolHealsAfterMemberDeath is the regression test for the
// permanent-502 failure mode: before the pool registry, a single dead
// member failed every subsequent distributed query until an operator
// restarted the service. Now the dial failure triggers an immediate
// reconcile that promotes the spare, and the same request succeeds.
func TestWorkerPoolHealsAfterMemberDeath(t *testing.T) {
	var workers []*killableWorker
	var addrs []string
	for i := 0; i < 4; i++ { // 3 members + 1 spare
		w, addr := startKillableWorker(t)
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	members, spare := addrs[:3], addrs[3]
	srv, ts := newTestServer(t, serve.Config{WorkerAddrs: members, SpareAddrs: []string{spare}}, 200)
	truth := triangleTruth(t, srv)

	out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3", MaxAnswers: -1})
	if out.AnswerCount != len(truth) {
		t.Fatalf("healthy pool: %d answers, ground truth %d", out.AnswerCount, len(truth))
	}

	// A member dies. The next query must still be answered — dial
	// fails, the registry reconciles the spare into the slot, and the
	// retry succeeds — instead of returning 502 forever.
	workers[1].kill()
	out, resp := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3", MaxAnswers: -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after member death: status %d, want 200", resp.StatusCode)
	}
	if out.AnswerCount != len(truth) {
		t.Fatalf("healed pool: %d answers, ground truth %d", out.AnswerCount, len(truth))
	}
	if got := srv.Metrics().PoolRepairs.Load(); got < 1 {
		t.Fatalf("PoolRepairs = %d, want ≥ 1", got)
	}
	if gen := srv.Pool().Generation(); gen != 1 {
		t.Fatalf("pool generation = %d, want 1", gen)
	}
	if got := srv.Pool().Members(); got[1] != spare {
		t.Fatalf("member 1 = %s, want promoted spare %s", got[1], spare)
	}
}

// TestWorkerPoolUnavailable: a dead pool surfaces as 502, not a hang
// or a fallback to in-process execution.
func TestWorkerPoolUnavailable(t *testing.T) {
	// Reserve an address and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	_, ts := newTestServer(t, serve.Config{WorkerAddrs: []string{dead}}, 60)
	body := strings.NewReader(`{"dataset":"tri","family":"C3"}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}
