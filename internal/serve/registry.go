package serve

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/relation"
)

// Dataset is one resident named database, versioned under delta
// ingestion. Each version is an immutable Snapshot: queries bind,
// plan, and execute against one snapshot — the property that keeps the
// plan cache sound (a cached plan embeds the statistics of exactly one
// version, and plan.CacheKey carries the version) and concurrent
// executions race-free (Plan.Execute treats the database as
// read-only). A delta batch (POST /datasets/{name}/delta) builds the
// next snapshot without mutating the previous one, so in-flight
// queries finish against the version they started on.
type Dataset struct {
	// Name is the registry key.
	Name string

	// mu serializes mutation: delta application and the continuous-
	// query maintenance that must observe versions in order. Readers
	// never take it — they load the current snapshot atomically.
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]
	// inc incrementally maintains the statistics catalog across the
	// delta stream (guarded by mu). It is seeded — the dataset's last
	// ever full statistics scan — on the first delta.
	inc *relation.IncrementalStats

	statsSeen atomic.Bool
}

// Snapshot is one immutable version of a dataset. The zero version is
// the registered database; every applied delta batch produces the
// next.
type Snapshot struct {
	// DB is this version's database. Treat as read-only.
	DB *relation.Database
	// Version counts the delta batches applied before this snapshot
	// (0 for the registered database).
	Version uint64

	ds *Dataset
}

// Snapshot returns the dataset's current version.
func (d *Dataset) Snapshot() *Snapshot { return d.snap.Load() }

// DB returns the current version's database. Treat as read-only.
func (d *Dataset) DB() *relation.Database { return d.snap.Load().DB }

// Version returns the current version number — the count of applied
// delta batches.
func (d *Dataset) Version() uint64 { return d.snap.Load().Version }

// Stats returns the snapshot's statistics catalog and whether the
// dataset's statistics were already memoized (false exactly once, for
// the collecting call — the serving layer's stats-cache hit/miss
// signal). Post-delta snapshots are born with an incrementally
// maintained catalog installed, so only version 0 ever pays a
// collection scan here.
func (sn *Snapshot) Stats() (stats *relation.Stats, cached bool) {
	cached = sn.ds.statsSeen.Swap(true)
	return sn.DB.Stats(), cached
}

// Bind resolves a query against the snapshot: every atom must name a
// resident relation of matching arity. It returns a cheap per-request
// database view whose relations carry the atom's variables as their
// schema — the tuple storage is shared with the snapshot and must not
// be mutated.
func (sn *Snapshot) Bind(q *query.Query) (*relation.Database, error) {
	view := relation.NewDatabase(sn.DB.N)
	for _, a := range q.Atoms {
		rel, ok := sn.DB.Relation(a.Name)
		if !ok {
			return nil, fmt.Errorf("dataset %s has no relation %s (has: %s)",
				sn.ds.Name, a.Name, strings.Join(sn.DB.Names(), ", "))
		}
		if rel.Arity() != a.Arity() {
			return nil, fmt.Errorf("dataset %s: relation %s has arity %d, atom %s needs %d",
				sn.ds.Name, a.Name, rel.Arity(), a, a.Arity())
		}
		view.AddRelation(&relation.Relation{
			Name:   a.Name,
			Attrs:  append([]string(nil), a.Vars...),
			Tuples: rel.Tuples,
		})
	}
	return view, nil
}

// ApplyDelta applies one delta batch to the dataset: it validates the
// delta against the current snapshot, builds the next snapshot with
// the incrementally maintained statistics catalog pre-installed (no
// re-scan — the catalog is updated from the delta's touched
// occurrences alone), and returns the new version plus the set-level
// effect per changed relation.
func (d *Dataset) ApplyDelta(delta relation.Delta) (uint64, map[string]relation.Effect, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applyDeltaLocked(delta)
}

// applyDeltaLocked is ApplyDelta under d.mu — the delta handler holds
// the lock across application and continuous-query maintenance so no
// second delta can interleave between them.
func (d *Dataset) applyDeltaLocked(delta relation.Delta) (uint64, map[string]relation.Effect, error) {
	cur := d.snap.Load()
	ndb, effects, err := relation.ApplyDelta(cur.DB, delta)
	if err != nil {
		return 0, nil, err
	}
	if d.inc == nil {
		// First delta: seed the incremental catalog from the current
		// snapshot — the last full scan this dataset ever pays.
		d.inc = relation.NewIncrementalStats(cur.DB)
	}
	d.inc.Apply(delta)
	ndb.InstallStats(d.inc.Snapshot())
	d.statsSeen.Store(true)
	next := &Snapshot{DB: ndb, Version: cur.Version + 1, ds: d}
	d.snap.Store(next)
	return next.Version, effects, nil
}

// Registry is the named-dataset catalog of the service. It is safe
// for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Dataset)}
}

// ErrDuplicateDataset reports an Add under an already-registered
// name. A dataset evolves only through its own delta stream, so the
// name cannot be rebound (a silent replace would reset the version
// sequence cached plans and continuous queries are keyed by).
var ErrDuplicateDataset = errors.New("serve: dataset already registered")

// Add registers db under name. Re-registering an existing name fails
// with ErrDuplicateDataset; callers pick a new name instead.
func (r *Registry) Add(name string, db *relation.Database) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty dataset name")
	}
	if db == nil || len(db.Relations) == 0 {
		return nil, fmt.Errorf("serve: dataset %s has no relations", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.sets[name]; exists {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateDataset, name)
	}
	d := &Dataset{Name: name}
	d.snap.Store(&Snapshot{DB: db, ds: d})
	r.sets[name] = d
	return d, nil
}

// Get returns the named dataset.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.sets[name]
	return d, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sets))
	for name := range r.sets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DatabaseFromCSV builds a database from in-memory CSV texts, one per
// relation (header = attribute names, rows = positive integers). The
// domain size is the largest value appearing in any relation.
func DatabaseFromCSV(csvs map[string]string) (*relation.Database, error) {
	if len(csvs) == 0 {
		return nil, fmt.Errorf("serve: no relations supplied")
	}
	names := make([]string, 0, len(csvs))
	for name := range csvs {
		names = append(names, name)
	}
	sort.Strings(names)
	maxVal := 1
	rels := make([]*relation.Relation, 0, len(names))
	for _, name := range names {
		rel, err := relation.ReadCSV(strings.NewReader(csvs[name]), name)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
		if mv := rel.MaxValue(); mv > maxVal {
			maxVal = mv
		}
		rels = append(rels, rel)
	}
	db := relation.NewDatabase(maxVal)
	for _, rel := range rels {
		db.AddRelation(rel)
	}
	return db, nil
}

// GeneratorSpec describes a synthetic dataset: the relations of a
// query family (or parsed query text) populated with either matching
// or Zipf-skewed data over [n].
type GeneratorSpec struct {
	// Family is a query family name (C3, L4, …); exactly one of Family
	// and Query must be set.
	Family string `json:"family,omitempty"`
	// Query is conjunctive query text whose atoms name the relations.
	Query string `json:"query,omitempty"`
	// N is the domain size (tuples per relation). Must be ≥ 1.
	N int `json:"n"`
	// Seed drives the generator; 1 if zero.
	Seed uint64 `json:"seed,omitempty"`
	// Kind is "matching" (default) or "zipf".
	Kind string `json:"kind,omitempty"`
	// Skew is the Zipf exponent for Kind "zipf"; 1.1 if zero.
	Skew float64 `json:"skew,omitempty"`
}

// Generate builds the database the spec describes.
func Generate(spec GeneratorSpec) (*relation.Database, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("serve: generator n = %d, need ≥ 1", spec.N)
	}
	var q *query.Query
	var err error
	switch {
	case spec.Family != "" && spec.Query != "":
		return nil, fmt.Errorf("serve: generator needs family or query, not both")
	case spec.Family != "":
		q, err = query.ParseFamily(spec.Family)
	case spec.Query != "":
		q, err = query.Parse(spec.Query)
	default:
		return nil, fmt.Errorf("serve: generator needs a family or query")
	}
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x5e12e))
	switch spec.Kind {
	case "", "matching":
		return relation.MatchingDatabase(rng, q, spec.N), nil
	case "zipf":
		skew := spec.Skew
		if skew == 0 {
			skew = 1.1
		}
		db := relation.NewDatabase(spec.N)
		for _, a := range q.Atoms {
			if a.Arity() != 2 {
				return nil, fmt.Errorf("serve: zipf generator needs binary atoms, %s has arity %d", a, a.Arity())
			}
			db.AddRelation(relation.SkewedZipf(rng, a.Name, a.Vars, spec.N, skew))
		}
		return db, nil
	default:
		return nil, fmt.Errorf("serve: unknown generator kind %q (want matching or zipf)", spec.Kind)
	}
}
