package serve

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/relation"
)

// Dataset is one resident named database: loaded (or generated) once,
// its columnar relations and memoized statistics then shared by every
// query that names it. Datasets are immutable after registration —
// the property that makes the plan cache sound (a cached plan embeds
// the statistics it was costed against) and concurrent executions
// race-free (Plan.Execute treats the database as read-only).
type Dataset struct {
	// Name is the registry key.
	Name string
	// DB is the resident database. Treat as read-only.
	DB *relation.Database

	statsSeen atomic.Bool
}

// Stats returns the dataset's statistics catalog and whether it was
// already memoized (false exactly once, for the collecting call — the
// serving layer's stats-cache hit/miss signal).
func (d *Dataset) Stats() (stats *relation.Stats, cached bool) {
	cached = d.statsSeen.Swap(true)
	return d.DB.Stats(), cached
}

// Bind resolves a query against the dataset: every atom must name a
// resident relation of matching arity. It returns a cheap per-request
// database view whose relations carry the atom's variables as their
// schema — the tuple storage is shared with the resident dataset and
// must not be mutated.
func (d *Dataset) Bind(q *query.Query) (*relation.Database, error) {
	view := relation.NewDatabase(d.DB.N)
	for _, a := range q.Atoms {
		rel, ok := d.DB.Relation(a.Name)
		if !ok {
			return nil, fmt.Errorf("dataset %s has no relation %s (has: %s)",
				d.Name, a.Name, strings.Join(d.DB.Names(), ", "))
		}
		if rel.Arity() != a.Arity() {
			return nil, fmt.Errorf("dataset %s: relation %s has arity %d, atom %s needs %d",
				d.Name, a.Name, rel.Arity(), a, a.Arity())
		}
		view.AddRelation(&relation.Relation{
			Name:   a.Name,
			Attrs:  append([]string(nil), a.Vars...),
			Tuples: rel.Tuples,
		})
	}
	return view, nil
}

// Registry is the named-dataset catalog of the service. It is safe
// for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	sets map[string]*Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sets: make(map[string]*Dataset)}
}

// ErrDuplicateDataset reports an Add under an already-registered
// name. Registered datasets are immutable, so the name cannot be
// reused (a silent replace would invalidate cached plans).
var ErrDuplicateDataset = errors.New("serve: dataset already registered")

// Add registers db under name. Re-registering an existing name fails
// with ErrDuplicateDataset; callers pick a new name instead.
func (r *Registry) Add(name string, db *relation.Database) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty dataset name")
	}
	if db == nil || len(db.Relations) == 0 {
		return nil, fmt.Errorf("serve: dataset %s has no relations", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.sets[name]; exists {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateDataset, name)
	}
	d := &Dataset{Name: name, DB: db}
	r.sets[name] = d
	return d, nil
}

// Get returns the named dataset.
func (r *Registry) Get(name string) (*Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.sets[name]
	return d, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sets))
	for name := range r.sets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DatabaseFromCSV builds a database from in-memory CSV texts, one per
// relation (header = attribute names, rows = positive integers). The
// domain size is the largest value appearing in any relation.
func DatabaseFromCSV(csvs map[string]string) (*relation.Database, error) {
	if len(csvs) == 0 {
		return nil, fmt.Errorf("serve: no relations supplied")
	}
	names := make([]string, 0, len(csvs))
	for name := range csvs {
		names = append(names, name)
	}
	sort.Strings(names)
	maxVal := 1
	rels := make([]*relation.Relation, 0, len(names))
	for _, name := range names {
		rel, err := relation.ReadCSV(strings.NewReader(csvs[name]), name)
		if err != nil {
			return nil, fmt.Errorf("relation %s: %w", name, err)
		}
		if mv := rel.MaxValue(); mv > maxVal {
			maxVal = mv
		}
		rels = append(rels, rel)
	}
	db := relation.NewDatabase(maxVal)
	for _, rel := range rels {
		db.AddRelation(rel)
	}
	return db, nil
}

// GeneratorSpec describes a synthetic dataset: the relations of a
// query family (or parsed query text) populated with either matching
// or Zipf-skewed data over [n].
type GeneratorSpec struct {
	// Family is a query family name (C3, L4, …); exactly one of Family
	// and Query must be set.
	Family string `json:"family,omitempty"`
	// Query is conjunctive query text whose atoms name the relations.
	Query string `json:"query,omitempty"`
	// N is the domain size (tuples per relation). Must be ≥ 1.
	N int `json:"n"`
	// Seed drives the generator; 1 if zero.
	Seed uint64 `json:"seed,omitempty"`
	// Kind is "matching" (default) or "zipf".
	Kind string `json:"kind,omitempty"`
	// Skew is the Zipf exponent for Kind "zipf"; 1.1 if zero.
	Skew float64 `json:"skew,omitempty"`
}

// Generate builds the database the spec describes.
func Generate(spec GeneratorSpec) (*relation.Database, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("serve: generator n = %d, need ≥ 1", spec.N)
	}
	var q *query.Query
	var err error
	switch {
	case spec.Family != "" && spec.Query != "":
		return nil, fmt.Errorf("serve: generator needs family or query, not both")
	case spec.Family != "":
		q, err = query.ParseFamily(spec.Family)
	case spec.Query != "":
		q, err = query.Parse(spec.Query)
	default:
		return nil, fmt.Errorf("serve: generator needs a family or query")
	}
	if err != nil {
		return nil, err
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0x5e12e))
	switch spec.Kind {
	case "", "matching":
		return relation.MatchingDatabase(rng, q, spec.N), nil
	case "zipf":
		skew := spec.Skew
		if skew == 0 {
			skew = 1.1
		}
		db := relation.NewDatabase(spec.N)
		for _, a := range q.Atoms {
			if a.Arity() != 2 {
				return nil, fmt.Errorf("serve: zipf generator needs binary atoms, %s has arity %d", a, a.Arity())
			}
			db.AddRelation(relation.SkewedZipf(rng, a.Name, a.Vars, spec.N, skew))
		}
		return db, nil
	default:
		return nil, fmt.Errorf("serve: unknown generator kind %q (want matching or zipf)", spec.Kind)
	}
}
