package serve

// This file is the streaming-ingest surface of the service: POST
// /datasets/{name}/delta appends and deletes tuple occurrences on a
// registered dataset. Application is copy-on-write — the previous
// snapshot stays valid for in-flight queries — and the statistics
// catalog is maintained incrementally from the delta's touched
// occurrences, never re-collected. While the dataset's mutation lock
// is held, every continuous query registered on the dataset is
// maintained through its hypercube.Maintainer, so a client that saw
// the delta acknowledged can never read a stale materialized answer.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/relation"
)

// DeltaRequest is the POST /datasets/{name}/delta body: per-relation
// tuple occurrences to append and to delete. Within a batch, deletes
// apply before appends. Every delete must match an occurrence present
// in the dataset's current version; values must lie in the dataset's
// registered domain [1, n].
type DeltaRequest struct {
	// Appends maps relation name → tuples to add.
	Appends map[string][][]int `json:"appends,omitempty"`
	// Deletes maps relation name → tuples to remove.
	Deletes map[string][][]int `json:"deletes,omitempty"`
}

// maxDeltaTuples bounds the tuples one delta batch may carry; a batch
// beyond it should be split by the client (and a hostile body cannot
// make the parser build an unbounded structure past it).
const maxDeltaTuples = 1 << 20

// ParseDeltaRequest parses and shape-checks a delta body into the
// relation layer's batch form. It is the whole untrusted-input surface
// of the delta endpoint — exported so the fuzz net can drive it
// directly — and guarantees on success: the delta is non-empty, every
// relation name is non-empty, every tuple is non-empty with positive
// values, tuples of one relation agree on arity within the batch, and
// the batch carries at most maxDeltaTuples occurrences. Arity against
// the resident relation and the domain upper bound are checked at
// application time, where the dataset is known.
func ParseDeltaRequest(body []byte) (relation.Delta, error) {
	var req DeltaRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return relation.Delta{}, fmt.Errorf("serve: bad delta body: %w", err)
	}
	if dec.More() {
		return relation.Delta{}, fmt.Errorf("serve: trailing data after delta body")
	}
	d := relation.Delta{}
	total := 0
	convert := func(side string, in map[string][][]int) (map[string][]relation.Tuple, error) {
		if len(in) == 0 {
			return nil, nil
		}
		out := make(map[string][]relation.Tuple, len(in))
		for name, rows := range in {
			if name == "" {
				return nil, fmt.Errorf("serve: %s delta with empty relation name", side)
			}
			if len(rows) == 0 {
				continue
			}
			total += len(rows)
			if total > maxDeltaTuples {
				return nil, fmt.Errorf("serve: delta carries more than %d tuples; split the batch", maxDeltaTuples)
			}
			arity := len(rows[0])
			ts := make([]relation.Tuple, 0, len(rows))
			for _, row := range rows {
				if len(row) == 0 {
					return nil, fmt.Errorf("serve: %s delta for %s has an empty tuple", side, name)
				}
				if len(row) != arity {
					return nil, fmt.Errorf("serve: %s delta for %s mixes arities %d and %d", side, name, arity, len(row))
				}
				for _, v := range row {
					if v < 1 {
						return nil, fmt.Errorf("serve: %s delta for %s has value %d, need ≥ 1", side, name, v)
					}
				}
				ts = append(ts, relation.Tuple(row))
			}
			out[name] = ts
		}
		if len(out) == 0 {
			return nil, nil
		}
		return out, nil
	}
	var err error
	if d.Deletes, err = convert("delete", req.Deletes); err != nil {
		return relation.Delta{}, err
	}
	if d.Appends, err = convert("append", req.Appends); err != nil {
		return relation.Delta{}, err
	}
	if d.Empty() {
		return relation.Delta{}, fmt.Errorf("serve: empty delta")
	}
	return d, nil
}

// readBody drains at most limit bytes of the request body.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("serve: reading body: %w", err)
	}
	return body, nil
}

// MaintainedQuery reports one continuous query's maintenance under a
// delta batch, inside the DeltaResponse.
type MaintainedQuery struct {
	// Name is the continuous query's registry key.
	Name string `json:"name"`
	// AnswersAdded and AnswersRemoved are the net change to the
	// materialized answer.
	AnswersAdded   int `json:"answersAdded"`
	AnswersRemoved int `json:"answersRemoved"`
	// Bits is the maintenance communication the batch cost this query.
	Bits int64 `json:"bits"`
	// RoutedTuples counts delta tuple receipts across the query's
	// workers — the replication-factor-per-tuple maintenance bound,
	// measured.
	RoutedTuples int64 `json:"routedTuples"`
	// Error reports a maintenance failure; the query's answers then
	// lag the dataset until re-registration.
	Error string `json:"error,omitempty"`
}

// DeltaResponse is the POST /datasets/{name}/delta reply.
type DeltaResponse struct {
	// Dataset echoes the request.
	Dataset string `json:"dataset"`
	// Version is the dataset version after the batch.
	Version uint64 `json:"version"`
	// Appended and Deleted count the tuple occurrences applied.
	Appended int `json:"appended"`
	Deleted  int `json:"deleted"`
	// Maintained lists the continuous queries maintained under the
	// batch, in registration-name order.
	Maintained []MaintainedQuery `json:"maintained,omitempty"`
	// ElapsedMs is the wall-clock application time, maintenance
	// included, in milliseconds.
	ElapsedMs float64 `json:"elapsedMs"`
}

// deltaBytes estimates a batch's resident-byte effect in the
// DatasetBytes unit (8 bytes per stored integer): bytes the appends
// add and bytes the deletes free.
func deltaBytes(delta relation.Delta) (appendBytes, deleteBytes int64) {
	for _, ts := range delta.Appends {
		for _, t := range ts {
			appendBytes += int64(len(t)) * 8
		}
	}
	for _, ts := range delta.Deletes {
		for _, t := range ts {
			deleteBytes += int64(len(t)) * 8
		}
	}
	return appendBytes, deleteBytes
}

// handleDatasetDelta is POST /datasets/{name}/delta: parse, apply
// copy-on-write, maintain continuous queries, report. In multi-tenant
// mode the batch's net byte growth (appends minus deletes) is booked
// against the authenticated tenant's resident-bytes quota.
func (s *Server) handleDatasetDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ten, handled := s.authorize(w, r)
	if handled {
		return
	}
	name := r.PathValue("name")
	ds, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (registered: %v)", name, s.registry.Names())
		return
	}
	body, err := readBody(w, r, 64<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	delta, err := ParseDeltaRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	appendBytes, deleteBytes := deltaBytes(delta)
	if ten != nil {
		if qe := ten.AdmitBytes(appendBytes); qe != nil {
			writeQuotaError(w, qe)
			return
		}
	}

	start := time.Now()
	// The dataset lock spans application and maintenance: once the
	// response is written, every continuous query on the dataset has
	// already caught up, so an acknowledged delta is never invisible
	// to a subsequent warm read.
	ds.mu.Lock()
	version, effects, err := ds.applyDeltaLocked(delta)
	if err != nil {
		ds.mu.Unlock()
		if ten != nil {
			ten.ReleaseBytes(appendBytes)
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	maintained := s.maintainContinuous(ds, version, effects)
	ds.mu.Unlock()
	if ten != nil && deleteBytes > 0 {
		ten.ReleaseBytes(deleteBytes)
	}

	appended, deleted := 0, 0
	for _, ts := range delta.Appends {
		appended += len(ts)
	}
	for _, ts := range delta.Deletes {
		deleted += len(ts)
	}
	s.metrics.DeltasTotal.Add(1)
	s.metrics.DeltaTuples.Add(int64(appended + deleted))
	writeJSON(w, http.StatusOK, DeltaResponse{
		Dataset:    ds.Name,
		Version:    version,
		Appended:   appended,
		Deleted:    deleted,
		Maintained: maintained,
		ElapsedMs:  float64(time.Since(start).Microseconds()) / 1000,
	})
}
