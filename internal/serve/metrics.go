package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/mpc"
)

// Metrics aggregates the service's operational counters. All fields
// are safe for concurrent update; WriteProm renders them in the
// Prometheus text exposition format served by GET /healthz.
type Metrics struct {
	// QueriesServed counts successfully answered POST /query requests.
	QueriesServed atomic.Int64
	// QueryErrors counts POST /query requests that failed after
	// admission (planning or execution errors).
	QueryErrors atomic.Int64
	// QueriesRejected counts requests the admission gate turned away
	// (client disconnect or shutdown while queued).
	QueriesRejected atomic.Int64
	// InFlight is the number of queries currently executing.
	InFlight atomic.Int64
	// PlanCacheHits counts POST /query requests served from a compiled
	// cached plan.
	PlanCacheHits atomic.Int64
	// PlanCacheMisses counts requests that had to build a fresh plan.
	PlanCacheMisses atomic.Int64
	// StatsCacheHits counts plan builds that reused a dataset's
	// memoized statistics catalog.
	StatsCacheHits atomic.Int64
	// StatsCacheMisses counts plan builds that collected statistics.
	StatsCacheMisses atomic.Int64
	// AnswersReturned counts answer tuples shipped to clients (after
	// per-response truncation).
	AnswersReturned atomic.Int64
	// ShuffleBits is the total number of bits received by workers
	// across all executed queries, as accounted by the MPC simulator.
	ShuffleBits atomic.Int64
	// DistributedQueries counts executions dispatched to the remote
	// TCP worker pool (Config.WorkerAddrs) rather than the in-process
	// loopback.
	DistributedQueries atomic.Int64
	// WorkerReplacements counts workers replaced mid-query by the
	// recovery policy across all executions.
	WorkerReplacements atomic.Int64
	// PoolRepairs counts pool members swapped for spares by registry
	// reconciliation (background heartbeats plus dial-failure repair).
	PoolRepairs atomic.Int64
	// DeltasTotal counts successfully applied delta batches
	// (POST /datasets/{name}/delta).
	DeltasTotal atomic.Int64
	// DeltaTuples counts the tuple occurrences those batches carried
	// (appends plus deletes).
	DeltaTuples atomic.Int64
	// MaintenanceBits counts the bits shipped to maintain continuous
	// queries under delta batches (delta routing, per the replication
	// factor of each tuple).
	MaintenanceBits atomic.Int64
	// ContinuousRegistered counts continuous-query registrations.
	ContinuousRegistered atomic.Int64
	// ContinuousReads counts warm answer reads
	// (GET /continuous/{name}).
	ContinuousReads atomic.Int64

	mu           sync.Mutex
	perRoundBits []int64
}

// RecordExecution folds one execution's communication record into the
// shuffle counters: the total bits and the per-round-number bit
// histogram (round r of every query accumulates into bucket r).
func (m *Metrics) RecordExecution(stats *mpc.Stats) {
	if stats == nil {
		return
	}
	m.ShuffleBits.Add(stats.TotalBits())
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, r := range stats.Rounds {
		for len(m.perRoundBits) <= i {
			m.perRoundBits = append(m.perRoundBits, 0)
		}
		m.perRoundBits[i] += r.TotalBits
	}
}

// PerRoundBits returns a copy of the cumulative per-round-number bit
// counters (index 0 = first round of each query).
func (m *Metrics) PerRoundBits() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int64(nil), m.perRoundBits...)
}

// PlanCacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (m *Metrics) PlanCacheHitRate() float64 {
	h, s := m.PlanCacheHits.Load(), m.PlanCacheHits.Load()+m.PlanCacheMisses.Load()
	if s == 0 {
		return 0
	}
	return float64(h) / float64(s)
}

// StatsCacheHitRate returns hits/(hits+misses) of the statistics
// memoization, or 0 before any plan build.
func (m *Metrics) StatsCacheHitRate() float64 {
	h, s := m.StatsCacheHits.Load(), m.StatsCacheHits.Load()+m.StatsCacheMisses.Load()
	if s == 0 {
		return 0
	}
	return float64(h) / float64(s)
}

// WriteProm renders every counter in the Prometheus text exposition
// format (one HELP/TYPE header per metric, then the sample).
func (m *Metrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("mpcserve_queries_served_total", "Queries answered successfully.", m.QueriesServed.Load())
	counter("mpcserve_query_errors_total", "Queries that failed during planning or execution.", m.QueryErrors.Load())
	counter("mpcserve_queries_rejected_total", "Queries rejected by the admission gate.", m.QueriesRejected.Load())
	gauge("mpcserve_queries_in_flight", "Queries currently executing.", m.InFlight.Load())
	counter("mpcserve_plan_cache_hits_total", "Queries served from a cached compiled plan.", m.PlanCacheHits.Load())
	counter("mpcserve_plan_cache_misses_total", "Queries that built a fresh plan.", m.PlanCacheMisses.Load())
	counter("mpcserve_stats_cache_hits_total", "Plan builds that reused memoized dataset statistics.", m.StatsCacheHits.Load())
	counter("mpcserve_stats_cache_misses_total", "Plan builds that collected dataset statistics.", m.StatsCacheMisses.Load())
	counter("mpcserve_answers_returned_total", "Answer tuples returned to clients.", m.AnswersReturned.Load())
	counter("mpcserve_shuffle_bits_total", "Bits received by workers across all queries.", m.ShuffleBits.Load())
	counter("mpcserve_distributed_queries_total", "Executions dispatched to the remote TCP worker pool.", m.DistributedQueries.Load())
	counter("mpcserve_worker_replacements_total", "Workers replaced mid-query by the recovery policy.", m.WorkerReplacements.Load())
	counter("mpcserve_pool_repairs_total", "Pool members swapped for spares by reconciliation.", m.PoolRepairs.Load())
	counter("mpcserve_deltas_total", "Delta batches applied to datasets.", m.DeltasTotal.Load())
	counter("mpcserve_delta_tuples_total", "Tuple occurrences ingested by delta batches.", m.DeltaTuples.Load())
	counter("mpcserve_maintenance_bits_total", "Bits shipped maintaining continuous queries under deltas.", m.MaintenanceBits.Load())
	counter("mpcserve_continuous_registered_total", "Continuous-query registrations.", m.ContinuousRegistered.Load())
	counter("mpcserve_continuous_reads_total", "Warm continuous-query answer reads.", m.ContinuousReads.Load())
	fmt.Fprintf(w, "# HELP mpcserve_plan_cache_hit_rate Plan cache hits over lookups.\n# TYPE mpcserve_plan_cache_hit_rate gauge\nmpcserve_plan_cache_hit_rate %.4f\n",
		m.PlanCacheHitRate())
	rounds := m.PerRoundBits()
	fmt.Fprintf(w, "# HELP mpcserve_shuffle_round_bits_total Bits received by workers, by round number.\n# TYPE mpcserve_shuffle_round_bits_total counter\n")
	for i, bits := range rounds {
		fmt.Fprintf(w, "mpcserve_shuffle_round_bits_total{round=%q} %d\n", fmt.Sprint(i+1), bits)
	}
}
