package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/serve"
)

// newTestServer builds a server with a generated matching dataset for
// the triangle query registered under "tri".
func newTestServer(t *testing.T, cfg serve.Config, n int) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(cfg)
	db, err := serve.Generate(serve.GeneratorSpec{Family: "C3", N: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("tri", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postQuery runs one POST /query and decodes the reply.
func postQuery(t *testing.T, url string, req serve.QueryRequest) (*serve.QueryResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /query: status %d: %s", resp.StatusCode, e.Error)
	}
	var out serve.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp
}

// triangleTruth computes the ground truth of C3 over the registered
// dataset.
func triangleTruth(t *testing.T, srv *serve.Server) []relation.Tuple {
	t.Helper()
	q, err := query.ParseFamily("C3")
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := srv.Registry().Get("tri")
	if !ok {
		t.Fatal("dataset tri not registered")
	}
	truth, err := core.GroundTruth(q, ds.DB())
	if err != nil {
		t.Fatal(err)
	}
	return truth
}

// TestEndToEndRoundTrip is the e2e acceptance path: register a CSV
// dataset over HTTP, query it, check the answers against GroundTruth,
// and check that the second identical query hits the plan cache and
// the memoized statistics — verified both in the response and in the
// metrics counters exposed by /healthz.
func TestEndToEndRoundTrip(t *testing.T) {
	srv := serve.New(serve.Config{DefaultP: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Register a two-relation join dataset from inline CSV.
	dsReq := serve.DatasetRequest{
		Name: "edges",
		CSV: map[string]string{
			"R": "x,y\n1,2\n2,3\n3,4\n4,2\n",
			"S": "y,z\n2,5\n3,6\n2,7\n9,9\n",
		},
	}
	body, _ := json.Marshal(dsReq)
	resp, err := http.Post(ts.URL+"/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /datasets: status %d", resp.StatusCode)
	}
	var info serve.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Relations) != 2 || info.Relations[0].Tuples != 4 {
		t.Fatalf("unexpected dataset info: %+v", info)
	}

	// Duplicate registration must 409.
	resp, err = http.Post(ts.URL+"/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate dataset: status %d, want 409", resp.StatusCode)
	}

	// Listing shows it.
	resp, err = http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list []serve.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "edges" {
		t.Fatalf("unexpected listing: %+v", list)
	}

	// Ground truth of the join, computed locally.
	q, err := query.Parse("R(x,y),S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	db, err := serve.DatabaseFromCSV(dsReq.CSV)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := core.GroundTruth(q, db)
	if err != nil {
		t.Fatal(err)
	}

	// First query: a cache miss that must still return the truth.
	qr := serve.QueryRequest{Dataset: "edges", Query: "R(x,y),S(y,z)", MaxAnswers: 1000}
	first, _ := postQuery(t, ts.URL, qr)
	if first.PlanCached {
		t.Errorf("first query reported a plan cache hit")
	}
	if first.StatsCached {
		t.Errorf("first query reported memoized statistics")
	}
	if first.AnswerCount != len(truth) || len(first.Answers) != len(truth) {
		t.Fatalf("answers = %d (returned %d), ground truth %d",
			first.AnswerCount, len(first.Answers), len(truth))
	}
	want := map[string]bool{}
	for _, tup := range truth {
		want[fmt.Sprint([]int(tup))] = true
	}
	for _, tup := range first.Answers {
		if !want[fmt.Sprint(tup)] {
			t.Fatalf("answer %v not in ground truth", tup)
		}
	}

	// Second identical query: plan + stats cache hit.
	second, _ := postQuery(t, ts.URL, qr)
	if !second.PlanCached {
		t.Errorf("second identical query missed the plan cache")
	}
	if !second.StatsCached {
		t.Errorf("second identical query re-collected statistics")
	}
	if second.AnswerCount != first.AnswerCount {
		t.Errorf("second query answers %d != first %d", second.AnswerCount, first.AnswerCount)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprint changed across identical queries")
	}
	if h := srv.Metrics().PlanCacheHits.Load(); h != 1 {
		t.Errorf("plan cache hits = %d, want 1", h)
	}
	if m := srv.Metrics().PlanCacheMisses.Load(); m != 1 {
		t.Errorf("plan cache misses = %d, want 1", m)
	}
	if h := srv.Metrics().StatsCacheMisses.Load(); h != 1 {
		t.Errorf("stats cache misses = %d, want 1", h)
	}

	// /healthz exposes the counters in Prometheus text format.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	for _, needle := range []string{
		"mpcserve_queries_served_total 2",
		"mpcserve_plan_cache_hits_total 1",
		"mpcserve_plan_cache_misses_total 1",
		"# TYPE mpcserve_shuffle_bits_total counter",
		"mpcserve_shuffle_round_bits_total{round=\"1\"}",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("/healthz missing %q in:\n%s", needle, text)
		}
	}
}

// TestConcurrentQueriesSharedPlan hammers one cached plan with over a
// hundred concurrent in-flight queries (run under -race in CI): every
// response must carry the full triangle ground truth.
func TestConcurrentQueriesSharedPlan(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{DefaultP: 8, MaxConcurrent: 128}, 120)
	truth := triangleTruth(t, srv)

	// Warm the cache so the flood shares one compiled plan.
	warm, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3"})
	if warm.AnswerCount != len(truth) {
		t.Fatalf("warm query answers %d, truth %d", warm.AnswerCount, len(truth))
	}

	const clients = 110
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.QueryRequest{
				Dataset: "tri", Family: "C3", Seed: uint64(c%7 + 1), MaxAnswers: -1,
			})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out serve.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
				return
			}
			if out.AnswerCount != len(truth) {
				errs <- fmt.Errorf("client %d: %d answers, want %d", c, out.AnswerCount, len(truth))
				return
			}
			if !out.PlanCached {
				errs <- fmt.Errorf("client %d: plan cache miss after warmup", c)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if served := srv.Metrics().QueriesServed.Load(); served != clients+1 {
		t.Errorf("queries served = %d, want %d", served, clients+1)
	}
	if hits := srv.Metrics().PlanCacheHits.Load(); hits != clients {
		t.Errorf("plan cache hits = %d, want %d", hits, clients)
	}
}

// TestCacheEviction checks LRU correctness end to end: with capacity
// 2, a third distinct plan evicts the least recently used one, and the
// evicted query replans correctly on its next appearance.
func TestCacheEviction(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{DefaultP: 8, CacheSize: 2}, 60)
	truth := triangleTruth(t, srv)

	families := []string{"C3", "L2", "L3"}
	counts := map[string]int{}
	for _, f := range families {
		out, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: f, MaxAnswers: -1})
		if out.PlanCached {
			t.Errorf("first %s query hit the cache", f)
		}
		counts[f] = out.AnswerCount
	}
	if counts["C3"] != len(truth) {
		t.Fatalf("C3 answers %d, truth %d", counts["C3"], len(truth))
	}
	if srv.PlanCache().Len() != 2 {
		t.Fatalf("cache len = %d, want 2", srv.PlanCache().Len())
	}

	// C3 was least recently used → evicted. Re-running it must miss,
	// replan, and still match its first answer count.
	again, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "C3", MaxAnswers: -1})
	if again.PlanCached {
		t.Errorf("evicted C3 plan reported a cache hit")
	}
	if again.AnswerCount != counts["C3"] {
		t.Errorf("replanned C3 answers %d, want %d", again.AnswerCount, counts["C3"])
	}
	// L3 stayed resident → hit.
	l3, _ := postQuery(t, ts.URL, serve.QueryRequest{Dataset: "tri", Family: "L3", MaxAnswers: -1})
	if !l3.PlanCached {
		t.Errorf("resident L3 plan missed the cache")
	}
	if l3.AnswerCount != counts["L3"] {
		t.Errorf("cached L3 answers %d, want %d", l3.AnswerCount, counts["L3"])
	}
}

// TestQueryValidation exercises the request validation paths.
func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{DefaultP: 8, MaxP: 64}, 20)
	cases := []struct {
		name string
		req  serve.QueryRequest
		code int
	}{
		{"missing dataset", serve.QueryRequest{Family: "C3"}, http.StatusBadRequest},
		{"unknown dataset", serve.QueryRequest{Dataset: "nope", Family: "C3"}, http.StatusNotFound},
		{"no query", serve.QueryRequest{Dataset: "tri"}, http.StatusBadRequest},
		{"both query and family", serve.QueryRequest{Dataset: "tri", Family: "C3", Query: "R(x,y)"}, http.StatusBadRequest},
		{"negative p", serve.QueryRequest{Dataset: "tri", Family: "C3", P: -3}, http.StatusBadRequest},
		{"p over limit", serve.QueryRequest{Dataset: "tri", Family: "C3", P: 4096}, http.StatusBadRequest},
		{"bad eps", serve.QueryRequest{Dataset: "tri", Family: "C3", Epsilon: "3/2"}, http.StatusBadRequest},
		{"unknown relation", serve.QueryRequest{Dataset: "tri", Query: "Zed(x,y)"}, http.StatusBadRequest},
		{"arity mismatch", serve.QueryRequest{Dataset: "tri", Query: "S1(x,y,z)"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body, _ := json.Marshal(c.req)
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.code {
				t.Errorf("status %d, want %d", resp.StatusCode, c.code)
			}
		})
	}
}

// TestGateAdmission unit-tests the admission controller: slot limits,
// budget limits, FIFO wakeup, and context cancellation.
func TestGateAdmission(t *testing.T) {
	g := serve.NewGate(2, 100)
	ctx := context.Background()
	if err := g.Acquire(ctx, 40); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, 40); err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", g.InFlight())
	}

	// Third acquire exceeds the slot count: must block until a release.
	admitted := make(chan error, 1)
	go func() { admitted <- g.Acquire(ctx, 10) }()
	select {
	case err := <-admitted:
		t.Fatalf("over-slot acquire admitted immediately (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	if g.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", g.Queued())
	}
	g.Release(40)
	if err := <-admitted; err != nil {
		t.Fatal(err)
	}

	// Budget: 40 + 10 in use; a 60-cost acquire must wait even though a
	// slot is free... but first fill the slot count back to 1 free.
	over := make(chan error, 1)
	go func() { over <- g.Acquire(ctx, 60) }()
	select {
	case err := <-over:
		t.Fatalf("over-budget acquire admitted immediately (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(10)
	if err := <-over; err != nil {
		t.Fatal(err)
	}

	// An oversized cost clamps to the budget and still runs (alone).
	g.Release(40)
	g.Release(60)
	if err := g.Acquire(ctx, 10_000); err != nil {
		t.Fatalf("oversized acquire: %v", err)
	}
	g.Release(10_000)

	// Context cancellation unblocks a waiter.
	if err := g.Acquire(ctx, 100); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := g.Acquire(cctx, 1); err == nil {
		t.Fatal("cancelled acquire succeeded")
	}
	if g.Queued() != 0 {
		t.Fatalf("cancelled waiter still queued")
	}
	g.Release(100)
}

// TestPlanCacheLRU unit-tests the cache eviction order.
func TestPlanCacheLRU(t *testing.T) {
	c := serve.NewPlanCache(2)
	c.Put("a", nil)
	c.Put("b", nil)
	if _, ok := c.Get("a"); !ok { // refresh a → b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", nil)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should be resident")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("len/cap = %d/%d, want 2/2", c.Len(), c.Capacity())
	}
}

// TestGateCancelAdmitRace is the regression test for a lost-capacity
// stall: a waiter whose context fires just as a Release admits it must
// hand its slot straight to the next queued waiter. Before the fix,
// that path returned capacity without running the FIFO wake loop, and
// the remaining waiter stalled forever.
func TestGateCancelAdmitRace(t *testing.T) {
	for i := 0; i < 300; i++ {
		g := serve.NewGate(1, 0)
		if err := g.Acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		bctx, bcancel := context.WithCancel(context.Background())
		bErr := make(chan error, 1)
		go func() { bErr <- g.Acquire(bctx, 1) }()
		cErr := make(chan error, 1)
		go func() { cErr <- g.Acquire(context.Background(), 1) }()
		for g.Queued() < 2 {
			runtime.Gosched()
		}
		// Race the cancellation against the release that admits B.
		go bcancel()
		g.Release(1)
		if err := <-bErr; err == nil {
			g.Release(1) // B won its admission; give the slot back
		}
		select {
		case err := <-cErr:
			if err != nil {
				t.Fatal(err)
			}
			g.Release(1)
		case <-time.After(2 * time.Second):
			t.Fatalf("iteration %d: waiter stalled — released capacity was lost", i)
		}
	}
}

// TestDatasetRegistrationStatusCodes distinguishes malformed requests
// (400) from duplicate names (409).
func TestDatasetRegistrationStatusCodes(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{DefaultP: 8}, 20)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/datasets", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"name":"","generator":{"family":"C3","n":10}}`); code != http.StatusBadRequest {
		t.Errorf("empty name: status %d, want 400", code)
	}
	if code := post(`{"name":"tri","generator":{"family":"C3","n":10}}`); code != http.StatusConflict {
		t.Errorf("duplicate name: status %d, want 409", code)
	}
	if code := post(`{"name":"ok","generator":{"family":"C3","n":10}}`); code != http.StatusCreated {
		t.Errorf("valid registration: status %d, want 201", code)
	}
}
