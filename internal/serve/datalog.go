package serve

import (
	"fmt"
	"math/big"
	"net/http"
	"strings"
	"time"

	"repro/internal/datalog"
	"repro/internal/dist"
	"repro/internal/trace"
)

// handleDatalogQuery is the Datalog branch of POST /query: a request
// whose program field is set (or whose query text contains ':-'/'?-')
// is parsed by the strict front end and evaluated stratum by stratum —
// rule bodies through the planner, recursive strata semi-naive over
// warm incremental maintenance, aggregate heads folded in the gather.
// Programs are not plan-cached: a program is many plans, and the
// recursive ones depend on derived statistics that only exist
// mid-evaluation.
func (s *Server) handleDatalogQuery(w http.ResponseWriter, r *http.Request, ten *Tenant, req QueryRequest) {
	src := req.Program
	if src == "" {
		src = req.Query
	} else if req.Query != "" || req.Family != "" {
		writeError(w, http.StatusBadRequest, "use program, query or family — not a combination")
		return
	}
	if req.Family != "" {
		writeError(w, http.StatusBadRequest, "use program or family, not both")
		return
	}
	prog, err := datalog.Parse(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	p := req.P
	if p == 0 {
		p = s.cfg.DefaultP
	}
	if p < 1 {
		writeError(w, http.StatusBadRequest, "p = %d, need ≥ 1", p)
		return
	}
	if p > s.cfg.MaxP {
		writeError(w, http.StatusBadRequest, "p = %d exceeds server limit %d", p, s.cfg.MaxP)
		return
	}
	if len(s.cfg.WorkerAddrs) > 0 && p != len(s.cfg.WorkerAddrs) {
		writeError(w, http.StatusBadRequest,
			"p = %d, but this service executes on a fixed pool of %d workers (leave p unset)",
			p, len(s.cfg.WorkerAddrs))
		return
	}
	var eps *big.Rat
	if req.Epsilon != "" {
		eps = new(big.Rat)
		if _, ok := eps.SetString(req.Epsilon); !ok {
			writeError(w, http.StatusBadRequest, "cannot parse eps %q as a rational", req.Epsilon)
			return
		}
		if eps.Sign() < 0 || eps.Cmp(big.NewRat(1, 1)) >= 0 {
			writeError(w, http.StatusBadRequest, "eps = %s outside [0,1)", eps.RatString())
			return
		}
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "dataset is required")
		return
	}
	ds, ok := s.registry.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q (registered: %v)", req.Dataset, s.registry.Names())
		return
	}
	sn := ds.Snapshot()

	// Admission: a program has no single plan to cost, so the booked
	// load is the dataset cardinality — every EDB tuple is shuffled at
	// least once, and the recursive deltas ride on top.
	cost := int64(sn.DB.TotalTuples()) + 1
	if ten != nil {
		if qe := ten.AdmitLoad(cost); qe != nil {
			s.metrics.QueriesRejected.Add(1)
			writeQuotaError(w, qe)
			return
		}
	}
	if err := s.gate.Acquire(r.Context(), cost); err != nil {
		if ten != nil {
			ten.ReleaseLoad(cost)
		}
		s.metrics.QueriesRejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "admission rejected: %v", err)
		return
	}
	s.metrics.InFlight.Add(1)
	if ten != nil {
		ten.InFlight.Add(1)
	}
	release := func() {
		s.metrics.InFlight.Add(-1)
		s.gate.Release(cost)
		if ten != nil {
			ten.InFlight.Add(-1)
			ten.ReleaseLoad(cost)
		}
	}

	qn := s.queryID.Add(1)
	qid := fmt.Sprintf("q-%d", qn)
	tc := trace.New(qid, qn)
	tc.Query = strings.TrimRight(prog.String(), "\n")
	tc.Engine = "datalog"
	tc.P = p
	if ten != nil {
		tc.Tenant = ten.Name()
	}
	s.traces.Add(tc)

	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	opts := datalog.Options{P: p, Epsilon: eps, Seed: seed, Context: r.Context()}
	if s.pool != nil {
		opts.Dial = func(int) (dist.Transport, error) {
			return s.dialPool(r.Context())
		}
		s.metrics.DistributedQueries.Add(1)
	}
	start := time.Now()
	res, err := datalog.Eval(prog, sn.DB, opts)
	elapsed := time.Since(start)
	release()
	if err != nil {
		s.metrics.QueryErrors.Add(1)
		if ten != nil {
			ten.QueryErrors.Add(1)
		}
		tc.Event(tc.Root(), "error", -1, err.Error())
		tc.Finish()
		writeError(w, http.StatusUnprocessableEntity, "evaluation failed: %v", err)
		return
	}
	tc.Finish()
	s.metrics.QueriesServed.Add(1)
	if ten != nil {
		ten.QueriesServed.Add(1)
	}
	s.metrics.RecordExecution(res.Stats)

	maxAnswers := req.MaxAnswers
	if maxAnswers == 0 {
		maxAnswers = s.cfg.MaxAnswers
	}
	if maxAnswers < 0 {
		maxAnswers = 0
	}
	answers := make([][]int, 0, min(maxAnswers, len(res.Answers)))
	for i, t := range res.Answers {
		if i >= maxAnswers {
			break
		}
		answers = append(answers, []int(t))
	}
	s.metrics.AnswersReturned.Add(int64(len(answers)))
	tenantName := ""
	if ten != nil {
		ten.AnswersReturned.Add(int64(len(answers)))
		tenantName = ten.Name()
	}
	perRound := make([]int64, 0, len(res.Stats.Rounds))
	for _, rs := range res.Stats.Rounds {
		perRound = append(perRound, rs.TotalBits)
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		QueryID:       qid,
		Tenant:        tenantName,
		Dataset:       ds.Name,
		Query:         strings.TrimRight(prog.String(), "\n"),
		P:             p,
		Engine:        "datalog",
		Rounds:        res.Stats.NumRounds(),
		Explain:       datalogExplain(prog),
		Vars:          res.Vars,
		Iterations:    res.Iterations,
		AnswerCount:   len(res.Answers),
		Answers:       answers,
		Truncated:     len(answers) < len(res.Answers),
		MaxLoadTuples: res.Stats.MaxLoadTuples(),
		TotalBits:     res.Stats.TotalBits(),
		PerRoundBits:  perRound,
		CapExceeded:   res.CapExceeded,
		ElapsedMs:     float64(elapsed.Microseconds()) / 1000,
	})
}

// datalogExplain summarizes the program's evaluation structure for
// the response (the per-rule plan EXPLAINs depend on mid-evaluation
// statistics, so the static report covers strata and recursion).
func datalogExplain(prog *datalog.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DATALOG %d rules, edb (%s), idb (%s)\n",
		len(prog.Rules), strings.Join(prog.EDBPreds(), ", "), strings.Join(prog.IDBPreds(), ", "))
	for i, s := range prog.Strata() {
		kind := "non-recursive"
		if s.Recursive {
			kind = "recursive, semi-naive fixpoint over warm delta maintenance"
		}
		fmt.Fprintf(&sb, "  stratum %d (%s): %s\n", i, kind, strings.Join(s.Preds, ", "))
	}
	fmt.Fprintf(&sb, "  output: %s\n", prog.OutputPred())
	return sb.String()
}
