package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/serve"
)

// graphCSV renders the test graph as the CSV body of relation e: a
// 12-node chain with back and skip edges, enough to need several
// fixpoint iterations.
func graphCSV() string {
	var sb strings.Builder
	sb.WriteString("x,y\n")
	for i := 1; i < 12; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, i+1)
	}
	sb.WriteString("4,2\n9,3\n1,7\n")
	return sb.String()
}

// graphEdges parses graphCSV back into pairs for the reference
// closure.
func graphEdges() [][2]int {
	var edges [][2]int
	for _, line := range strings.Split(strings.TrimSpace(graphCSV()), "\n")[1:] {
		var a, b int
		fmt.Sscanf(line, "%d,%d", &a, &b)
		edges = append(edges, [2]int{a, b})
	}
	return edges
}

// closurePairs is the naive transitive closure reference, sorted.
func closurePairs(edges [][2]int) [][]int {
	reach := map[[2]int]bool{}
	for _, e := range edges {
		reach[e] = true
	}
	for changed := true; changed; {
		changed = false
		for ab := range reach {
			for _, e := range edges {
				if e[0] == ab[1] && !reach[[2]int{ab[0], e[1]}] {
					reach[[2]int{ab[0], e[1]}] = true
					changed = true
				}
			}
		}
	}
	out := make([][]int, 0, len(reach))
	for ab := range reach {
		out = append(out, []int{ab[0], ab[1]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// newGraphServer registers the edge dataset under "graph".
func newGraphServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv := serve.New(cfg)
	db, err := serve.DatabaseFromCSV(map[string]string{"e": graphCSV()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("graph", db); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

const tcServeProgram = `tc(x,y) :- e(x,y).
tc(x,z) :- tc(x,y), e(y,z).
?- tc(x,y).`

// TestServeDatalogRecursive: POST /query with a recursive program
// returns the exact transitive closure, flags the datalog engine, and
// reports fixpoint iterations.
func TestServeDatalogRecursive(t *testing.T) {
	_, ts := newGraphServer(t, serve.Config{DefaultP: 4})
	want := closurePairs(graphEdges())

	out, _ := postQuery(t, ts.URL, serve.QueryRequest{
		Dataset: "graph", Program: tcServeProgram, MaxAnswers: 100000,
	})
	if out.Engine != "datalog" {
		t.Fatalf("engine = %q, want datalog", out.Engine)
	}
	if out.Iterations < 2 {
		t.Fatalf("iterations = %d, want ≥ 2 on a 12-node chain", out.Iterations)
	}
	if out.Rounds < 1 || out.TotalBits <= 0 {
		t.Fatalf("rounds = %d, totalBits = %d: execution left no communication record", out.Rounds, out.TotalBits)
	}
	if !reflect.DeepEqual(out.Answers, want) {
		t.Fatalf("closure: got %d pairs, reference %d", len(out.Answers), len(want))
	}
	if !reflect.DeepEqual(out.Vars, []string{"x", "y"}) {
		t.Fatalf("vars = %v", out.Vars)
	}
	if !strings.Contains(out.Explain, "recursive") {
		t.Fatalf("explain does not mention recursion:\n%s", out.Explain)
	}

	// The same program inline in the query field routes identically:
	// ':-' selects the Datalog front end.
	inline, _ := postQuery(t, ts.URL, serve.QueryRequest{
		Dataset: "graph", Query: tcServeProgram, MaxAnswers: 100000,
	})
	if !reflect.DeepEqual(inline.Answers, want) || inline.Engine != "datalog" {
		t.Fatalf("inline routing: engine %q, %d answers", inline.Engine, len(inline.Answers))
	}
}

// TestServeDatalogAggregate: an aggregate head folds in the gather and
// matches per-group counts computed directly from the edge list.
func TestServeDatalogAggregate(t *testing.T) {
	_, ts := newGraphServer(t, serve.Config{DefaultP: 4})
	counts := map[int]int{}
	for _, e := range graphEdges() {
		counts[e[0]]++
	}
	want := make([][]int, 0, len(counts))
	for x, c := range counts {
		want = append(want, []int{x, c})
	}
	sort.Slice(want, func(i, j int) bool { return want[i][0] < want[j][0] })

	out, _ := postQuery(t, ts.URL, serve.QueryRequest{
		Dataset: "graph", Program: `deg(x, count(y)) :- e(x,y).`, MaxAnswers: 100000,
	})
	if !reflect.DeepEqual(out.Answers, want) {
		t.Fatalf("degree counts: got %v, want %v", out.Answers, want)
	}
	if out.Iterations != 0 {
		t.Fatalf("iterations = %d on a non-recursive program", out.Iterations)
	}
}

// TestServeDatalogWorkerPool: the same recursive program on a fixed
// remote worker pool — identical answers, distributed counter ticks.
func TestServeDatalogWorkerPool(t *testing.T) {
	addrs := startWorkerPool(t, 3)
	srv, ts := newGraphServer(t, serve.Config{WorkerAddrs: addrs})
	want := closurePairs(graphEdges())

	out, _ := postQuery(t, ts.URL, serve.QueryRequest{
		Dataset: "graph", Program: tcServeProgram, MaxAnswers: 100000,
	})
	if !reflect.DeepEqual(out.Answers, want) {
		t.Fatalf("pool closure: got %d pairs, reference %d", len(out.Answers), len(want))
	}
	if out.P != 3 {
		t.Fatalf("p = %d, want pool size 3", out.P)
	}
	if got := srv.Metrics().DistributedQueries.Load(); got < 1 {
		t.Fatalf("DistributedQueries = %d, want ≥ 1", got)
	}
}

// TestServeDatalogRejections: the strict front end's errors surface as
// client errors, not 500s.
func TestServeDatalogRejections(t *testing.T) {
	_, ts := newGraphServer(t, serve.Config{DefaultP: 4})
	post := func(req serve.QueryRequest) (int, string) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}
	cases := []struct {
		name string
		req  serve.QueryRequest
		code int
		frag string
	}{
		{"syntax error", serve.QueryRequest{Dataset: "graph", Program: "tc(x,y) :- e(x,y)"}, 400, "expected ',' or '.'"},
		{"unsafe rule", serve.QueryRequest{Dataset: "graph", Program: "p(x,z) :- e(x,y)."}, 400, "unsafe"},
		{"program and query", serve.QueryRequest{Dataset: "graph", Program: "p(x,y) :- e(x,y).", Query: "e(x,y)"}, 400, "not a combination"},
		{"program and family", serve.QueryRequest{Dataset: "graph", Program: "p(x,y) :- e(x,y).", Family: "C3"}, 400, "not a combination"},
		{"unknown dataset", serve.QueryRequest{Dataset: "nope", Program: "p(x,y) :- e(x,y)."}, 404, "unknown dataset"},
		{"missing edb", serve.QueryRequest{Dataset: "graph", Program: "p(x,y) :- f(x,y)."}, 422, ""},
		{"bad eps", serve.QueryRequest{Dataset: "graph", Program: "p(x,y) :- e(x,y).", Epsilon: "3/2"}, 400, "outside"},
	}
	for _, tc := range cases {
		code, msg := post(tc.req)
		if code != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, msg, tc.code)
		} else if tc.frag != "" && !strings.Contains(msg, tc.frag) {
			t.Errorf("%s: error %q does not contain %q", tc.name, msg, tc.frag)
		}
	}
}
