package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a Config.Now frozen at a single instant, so
// token buckets never refill: a tenant with burst B admits exactly B
// requests, deterministically, no matter how they race.
func fixedClock() func() time.Time {
	at := time.Unix(1700000000, 0)
	return func() time.Time { return at }
}

func TestTenantTokenBucketRefill(t *testing.T) {
	ten := &Tenant{cfg: TenantConfig{Name: "a", Key: "k", QPS: 2, Burst: 3}}
	at := time.Unix(1000, 0)

	// Burst drains in full, then rejects.
	for i := 0; i < 3; i++ {
		if qe := ten.AdmitRate(at); qe != nil {
			t.Fatalf("burst request %d rejected: %v", i, qe)
		}
	}
	qe := ten.AdmitRate(at)
	if qe == nil {
		t.Fatal("4th request admitted over burst 3")
	}
	if qe.Reason != ReasonRate || qe.Tenant != "a" {
		t.Fatalf("rejection = %+v", qe)
	}
	// Empty bucket at 2 qps: next token in 500ms.
	if qe.RetryAfterMs != 500 {
		t.Fatalf("RetryAfterMs = %d, want 500", qe.RetryAfterMs)
	}

	// 1s at 2 qps refills exactly 2 tokens.
	at = at.Add(time.Second)
	for i := 0; i < 2; i++ {
		if qe := ten.AdmitRate(at); qe != nil {
			t.Fatalf("refilled request %d rejected: %v", i, qe)
		}
	}
	if ten.AdmitRate(at) == nil {
		t.Fatal("3rd request admitted after a 2-token refill")
	}
	if got := ten.RejectedRate.Load(); got != 2 {
		t.Fatalf("RejectedRate = %d, want 2", got)
	}

	// A long idle stretch caps at burst, not qps×elapsed.
	at = at.Add(time.Hour)
	admitted := 0
	for ten.AdmitRate(at) == nil {
		admitted++
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after long idle, want burst 3", admitted)
	}
}

func TestTenantLoadQuota(t *testing.T) {
	ten := &Tenant{cfg: TenantConfig{Name: "a", Key: "k", MaxInFlightLoad: 100}}
	if qe := ten.AdmitLoad(60); qe != nil {
		t.Fatalf("first 60 rejected: %v", qe)
	}
	qe := ten.AdmitLoad(60)
	if qe == nil || qe.Reason != ReasonLoad {
		t.Fatalf("over-quota admit: %+v", qe)
	}
	ten.ReleaseLoad(60)
	if got := ten.InFlightLoad(); got != 0 {
		t.Fatalf("InFlightLoad after release = %d", got)
	}

	// Oversized single query clamps to the quota and runs alone.
	if qe := ten.AdmitLoad(10_000); qe != nil {
		t.Fatalf("oversized query rejected: %v", qe)
	}
	if ten.AdmitLoad(1) == nil {
		t.Fatal("second query admitted alongside a clamped oversized one")
	}
	ten.ReleaseLoad(10_000)
	if got := ten.InFlightLoad(); got != 0 {
		t.Fatalf("InFlightLoad after clamped release = %d", got)
	}
}

func TestTenantBytesQuota(t *testing.T) {
	ten := &Tenant{cfg: TenantConfig{Name: "a", Key: "k", MaxResidentBytes: 1000}}
	if qe := ten.AdmitBytes(800); qe != nil {
		t.Fatalf("first dataset rejected: %v", qe)
	}
	qe := ten.AdmitBytes(300)
	if qe == nil || qe.Reason != ReasonBytes || qe.RetryAfterMs != 0 {
		t.Fatalf("over-quota bytes: %+v", qe)
	}
	ten.ReleaseBytes(800)
	if qe := ten.AdmitBytes(1000); qe != nil {
		t.Fatalf("dataset rejected after free: %v", qe)
	}
}

func TestTenantsValidation(t *testing.T) {
	cases := []struct {
		name string
		cfgs []TenantConfig
	}{
		{"empty", nil},
		{"no name", []TenantConfig{{Key: "k"}}},
		{"no key", []TenantConfig{{Name: "a"}}},
		{"dup name", []TenantConfig{{Name: "a", Key: "k1"}, {Name: "a", Key: "k2"}}},
		{"dup key", []TenantConfig{{Name: "a", Key: "k"}, {Name: "b", Key: "k"}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewTenants(c.cfgs); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
	if _, err := NewTenants([]TenantConfig{{Name: "a", Key: "ka"}, {Name: "b", Key: "kb"}}); err != nil {
		t.Fatal(err)
	}
}

func TestAuthenticateHeaders(t *testing.T) {
	ts, err := NewTenants([]TenantConfig{{Name: "a", Key: "secret"}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(h, v string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/query", nil)
		if h != "" {
			r.Header.Set(h, v)
		}
		return r
	}
	if ten, err := ts.Authenticate(mk("Authorization", "Bearer secret")); err != nil || ten.Name() != "a" {
		t.Fatalf("bearer auth: %v, %v", ten, err)
	}
	if ten, err := ts.Authenticate(mk("X-API-Key", "secret")); err != nil || ten.Name() != "a" {
		t.Fatalf("x-api-key auth: %v, %v", ten, err)
	}
	for name, r := range map[string]*http.Request{
		"missing":     mk("", ""),
		"wrong key":   mk("X-API-Key", "nope"),
		"non-bearer":  mk("Authorization", "Basic Zm9v"),
		"wrong token": mk("Authorization", "Bearer nope"),
	} {
		if _, err := ts.Authenticate(r); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

// TestTenantRaceExact429s hammers a 3-tenant server from ~100
// concurrent goroutines under a frozen clock and asserts the exact
// outcome split: every tenant gets precisely Burst successes and the
// rest 429s, and the per-tenant counters (API and Prometheus) agree
// with the HTTP-observed totals. Run with -race -shuffle=on in CI's
// nightly job.
func TestTenantRaceExact429s(t *testing.T) {
	tenants := []TenantConfig{
		{Name: "alpha", Key: "ka", QPS: 1, Burst: 5},
		{Name: "beta", Key: "kb", QPS: 1, Burst: 10},
		{Name: "gamma", Key: "kc", QPS: 1, Burst: 18},
	}
	requests := map[string]int{"alpha": 40, "beta": 30, "gamma": 30} // 100 total
	srv := New(Config{DefaultP: 4, Tenants: tenants, Now: fixedClock()})
	db, err := Generate(GeneratorSpec{Family: "L2", N: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("d", db); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	body, _ := json.Marshal(QueryRequest{Dataset: "d", Family: "L2"})

	type outcome struct{ ok, throttled, other int64 }
	results := map[string]*outcome{"alpha": {}, "beta": {}, "gamma": {}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, tc := range tenants {
		for i := 0; i < requests[tc.Name]; i++ {
			wg.Add(1)
			go func(name, key string) {
				defer wg.Done()
				req, _ := http.NewRequest(http.MethodPost, hs.URL+"/query", bytes.NewReader(body))
				req.Header.Set("Authorization", "Bearer "+key)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					results[name].ok++
				case http.StatusTooManyRequests:
					results[name].throttled++
					var qe QuotaError
					if err := json.NewDecoder(resp.Body).Decode(&qe); err != nil {
						t.Errorf("429 body: %v", err)
					} else if qe.Tenant != name || qe.Reason != ReasonRate || qe.RetryAfterMs <= 0 {
						t.Errorf("429 body = %+v", qe)
					}
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After header")
					}
				default:
					results[name].other++
					b, _ := io.ReadAll(resp.Body)
					t.Errorf("tenant %s: status %d: %s", name, resp.StatusCode, b)
				}
			}(tc.Name, tc.Key)
		}
	}
	wg.Wait()

	for _, tc := range tenants {
		got, want := results[tc.Name], int64(tc.Burst)
		if got.ok != want || got.throttled != int64(requests[tc.Name])-want || got.other != 0 {
			t.Errorf("tenant %s: ok=%d throttled=%d other=%d, want ok=%d throttled=%d",
				tc.Name, got.ok, got.throttled, got.other, want, int64(requests[tc.Name])-want)
		}
		ten, ok := srv.Tenants().Get(tc.Name)
		if !ok {
			t.Fatalf("tenant %s missing from directory", tc.Name)
		}
		if ten.QueriesServed.Load() != got.ok || ten.RejectedRate.Load() != got.throttled {
			t.Errorf("tenant %s counters: served=%d rejectedRate=%d, HTTP saw ok=%d throttled=%d",
				tc.Name, ten.QueriesServed.Load(), ten.RejectedRate.Load(), got.ok, got.throttled)
		}
		if ten.InFlight.Load() != 0 || ten.InFlightLoad() != 0 {
			t.Errorf("tenant %s: in-flight not drained (%d queries, %d load)",
				tc.Name, ten.InFlight.Load(), ten.InFlightLoad())
		}
	}

	// The Prometheus exposition must carry the same exact totals.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, _ := io.ReadAll(resp.Body)
	for _, tc := range tenants {
		served := fmt.Sprintf("mpcserve_tenant_queries_total{tenant=%q} %d", tc.Name, results[tc.Name].ok)
		rejected := fmt.Sprintf("mpcserve_tenant_rejected_total{tenant=%q,reason=%q} %d", tc.Name, ReasonRate, results[tc.Name].throttled)
		for _, want := range []string{served, rejected} {
			if !strings.Contains(string(prom), want) {
				t.Errorf("metrics missing %q", want)
			}
		}
	}
}

// TestQueryTraceRecorded asserts POST /query publishes a finished
// trace: GET /trace/{queryID} returns one round span per round and
// one worker span per worker per round, each within the planner's
// predicted load on a uniform matching input.
func TestQueryTraceRecorded(t *testing.T) {
	srv := New(Config{DefaultP: 4})
	db, err := Generate(GeneratorSpec{Family: "C3", N: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Add("tri", db); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body, _ := json.Marshal(QueryRequest{Dataset: "tri", Family: "C3"})
	resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || qr.QueryID == "" {
		t.Fatalf("status %d, queryID %q", resp.StatusCode, qr.QueryID)
	}

	tresp, err := http.Get(hs.URL + "/trace/" + qr.QueryID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: status %d", qr.QueryID, tresp.StatusCode)
	}
	var tr struct {
		QueryID             string  `json:"queryID"`
		Engine              string  `json:"engine"`
		P                   int     `json:"p"`
		PredictedLoadTuples float64 `json:"predictedLoadTuples"`
		BudgetLoadTuples    int64   `json:"budgetLoadTuples"`
		DurationNs          int64   `json:"durationNs"`
		Spans               []struct {
			Name       string `json:"name"`
			Round      int    `json:"round"`
			Worker     int    `json:"worker"`
			LoadTuples int64  `json:"loadTuples"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.QueryID != qr.QueryID || tr.P != 4 || tr.DurationNs == 0 {
		t.Fatalf("trace header = %+v", tr)
	}
	// The point prediction L is an expectation; hashing variance puts
	// individual workers a little above it. The enforceable per-worker
	// bound is the planner's budget c·N/p^(1−ε).
	bound := float64(tr.BudgetLoadTuples)
	if bound <= 0 {
		bound = 2 * tr.PredictedLoadTuples
	}
	rounds, workerSpans := 0, 0
	for _, s := range tr.Spans {
		switch s.Name {
		case "round":
			rounds++
		case "worker":
			workerSpans++
			if s.Worker < 0 || s.Worker >= tr.P {
				t.Errorf("worker span outside pool: %+v", s)
			}
			if float64(s.LoadTuples) > bound {
				t.Errorf("worker %d round %d actual load %d exceeds planner bound %.1f (predicted L %.1f)",
					s.Worker, s.Round, s.LoadTuples, bound, tr.PredictedLoadTuples)
			}
		}
	}
	if rounds != qr.Rounds || rounds == 0 {
		t.Fatalf("round spans = %d, response rounds = %d", rounds, qr.Rounds)
	}
	if workerSpans != rounds*tr.P {
		t.Fatalf("worker spans = %d, want %d (rounds %d × p %d)", workerSpans, rounds*tr.P, rounds, tr.P)
	}

	// Unknown ids 404; the listing and /ops include the execution.
	if r2, _ := http.Get(hs.URL + "/trace/q-none"); r2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /trace/q-none: status %d, want 404", r2.StatusCode)
	}
	var list []TraceSummary
	r3, err := http.Get(hs.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if err := json.NewDecoder(r3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].QueryID != qr.QueryID || list[0].Active {
		t.Fatalf("trace listing = %+v", list)
	}
	var ops OpsReport
	r4, err := http.Get(hs.URL + "/ops")
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Body.Close()
	if err := json.NewDecoder(r4.Body).Decode(&ops); err != nil {
		t.Fatal(err)
	}
	if len(ops.Queries) != 1 || ops.Queries[0].QueryID != qr.QueryID || ops.MultiTenant {
		t.Fatalf("ops report queries = %+v, multiTenant = %v", ops.Queries, ops.MultiTenant)
	}
}
