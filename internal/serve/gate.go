package serve

import (
	"context"
	"fmt"
	"sync"
)

// Gate is the admission controller of the serving layer. It bounds two
// resources at once: the number of in-flight query executions (the
// worker-pool size — each execution spins up its own simulated
// cluster's goroutines) and the summed predicted load of the admitted
// executions in tuples (the global memory budget — a query's predicted
// per-worker load times its p is roughly the memory its shuffle
// materializes). Waiters are served FIFO, so one expensive query
// cannot be starved by a stream of cheap ones.
type Gate struct {
	mu      sync.Mutex
	slots   int
	budget  int64 // ≤ 0 means unbounded
	inUse   int
	load    int64
	waiters []*gateWaiter
}

// gateWaiter is one queued Acquire call.
type gateWaiter struct {
	cost     int64
	ready    chan struct{}
	admitted bool
}

// NewGate returns a gate admitting at most slots concurrent
// executions (slots < 1 selects 1) whose predicted loads sum to at
// most budget tuples (budget ≤ 0 disables the load bound).
func NewGate(slots int, budget int64) *Gate {
	if slots < 1 {
		slots = 1
	}
	return &Gate{slots: slots, budget: budget}
}

// Acquire blocks until the gate admits an execution of the given
// predicted cost (in tuples), or until ctx is done. A cost larger than
// the whole budget is clamped to it, so oversized queries still run —
// alone. Every successful Acquire must be paired with Release(cost)
// with the same cost value.
func (g *Gate) Acquire(ctx context.Context, cost int64) error {
	if cost < 0 {
		return fmt.Errorf("serve: negative admission cost %d", cost)
	}
	if g.budget > 0 && cost > g.budget {
		cost = g.budget
	}
	g.mu.Lock()
	if len(g.waiters) == 0 && g.fits(cost) {
		g.admit(cost)
		g.mu.Unlock()
		return nil
	}
	w := &gateWaiter{cost: cost, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.admitted {
			// Lost the race: admitted between Done and the lock. Undo —
			// through the full release path, so the capacity this waiter
			// hands back immediately admits whoever is queued behind it.
			g.releaseLocked(cost)
			g.mu.Unlock()
			return ctx.Err()
		}
		for i, q := range g.waiters {
			if q == w {
				g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
				break
			}
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns an execution's slot and budget share and admits as
// many queued waiters as now fit, in FIFO order. The cost must equal
// the value passed to the paired Acquire (after its clamping, which
// Release re-applies).
func (g *Gate) Release(cost int64) {
	if g.budget > 0 && cost > g.budget {
		cost = g.budget
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.releaseLocked(cost)
}

// releaseLocked un-books an execution and admits as many queued
// waiters as now fit, FIFO. Callers hold g.mu.
func (g *Gate) releaseLocked(cost int64) {
	g.release(cost)
	for len(g.waiters) > 0 && g.fits(g.waiters[0].cost) {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.admit(w.cost)
		w.admitted = true
		close(w.ready)
	}
}

// InFlight returns the number of currently admitted executions.
func (g *Gate) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Queued returns the number of waiters blocked in Acquire.
func (g *Gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.waiters)
}

// Slots returns the gate's concurrent-execution capacity.
func (g *Gate) Slots() int { return g.slots }

// Budget returns the configured global predicted-load budget in
// tuples (≤ 0 means unbounded).
func (g *Gate) Budget() int64 { return g.budget }

// Load returns the summed predicted load of the currently admitted
// executions, in tuples.
func (g *Gate) Load() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.load
}

// fits reports whether an execution of the given cost can be admitted
// now. Callers hold g.mu.
func (g *Gate) fits(cost int64) bool {
	if g.inUse >= g.slots {
		return false
	}
	return g.budget <= 0 || g.load+cost <= g.budget
}

// admit books an execution. Callers hold g.mu.
func (g *Gate) admit(cost int64) {
	g.inUse++
	g.load += cost
}

// release un-books an execution. Callers hold g.mu.
func (g *Gate) release(cost int64) {
	g.inUse--
	g.load -= cost
}
