package serve_test

// Fuzz net for the delta endpoint's untrusted-input surface:
// ParseDeltaRequest must never panic, and every accepted delta must
// satisfy the invariants the application layer relies on — non-empty,
// named relations, non-empty tuples of positive values, one arity per
// relation per side.

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/serve"
)

func FuzzParseDeltaRequest(f *testing.F) {
	for _, seed := range []string{
		`{"appends":{"R":[[1,2],[3,4]]}}`,
		`{"deletes":{"R":[[1,2]]},"appends":{"S":[[7,7,7]]}}`,
		`{"appends":{"R":[]},"deletes":{"S":[[1]]}}`,
		`{}`,
		`{"appends":{"":[[1]]}}`,
		`{"appends":{"R":[[0]]}}`,
		`{"appends":{"R":[[-5,2]]}}`,
		`{"appends":{"R":[[1,2],[1,2,3]]}}`,
		`{"appends":{"R":[[]]}}`,
		`{"append":{"R":[[1,2]]}}`,
		`{"appends":{"R":[[1,2]]}}trailing`,
		`{"appends":{"R":[[92233720368547758079]]}}`,
		`[1,2,3]`,
		`{"appends":`,
		``,
		"\xff\xfe",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		d, err := serve.ParseDeltaRequest(body)
		if err != nil {
			return
		}
		if d.Empty() {
			t.Fatal("parser accepted an empty delta")
		}
		check := func(side string, m map[string][]relation.Tuple) {
			for name, ts := range m {
				if name == "" {
					t.Fatalf("%s side kept an empty relation name", side)
				}
				arity := -1
				for _, tup := range ts {
					if len(tup) == 0 {
						t.Fatalf("%s delta for %s kept an empty tuple", side, name)
					}
					if arity == -1 {
						arity = len(tup)
					} else if len(tup) != arity {
						t.Fatalf("%s delta for %s mixes arities %d and %d", side, name, arity, len(tup))
					}
					for _, v := range tup {
						if v < 1 {
							t.Fatalf("%s delta for %s kept value %d", side, name, v)
						}
					}
				}
			}
		}
		check("append", d.Appends)
		check("delete", d.Deletes)
	})
}
